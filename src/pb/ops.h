// Client operations and the idempotent transactions the primary derives
// from them.
//
// The split mirrors ZooKeeper's request pipeline (paper §1, §6): a client
// *operation* may be non-deterministic or conditional (sequential-node
// suffix, version precondition); the primary evaluates it against its
// current (speculative) state and emits a fully resolved, *idempotent*
// transaction — explicit final path, explicit resulting version — or an
// error transaction. Backups apply transactions blindly.
#pragma once

#include <string>

#include "common/buffer.h"
#include "common/status.h"
#include "common/types.h"

namespace zab::pb {

enum class OpType : std::uint8_t {
  kCreate = 1,
  kDelete = 2,
  kSetData = 3,
  kCloseSession = 4,    // delete the session + every ephemeral it owns
  kCreateSession = 5,   // mint a durable session (primary resolves the id)
  kTouchSession = 6,    // re-attach / liveness: fails if the session expired
  kSync = 7,            // flush a no-op barrier through the pipeline; the
                        // result's zxid fences linearizable reads
  kReconfig = 8,        // membership change; `data` holds a ReconfigRequest,
                        // resolved by the primary into a cluster-config txn
};

/// What a kReconfig op asks for. The primary resolves this delta against
/// its ACTIVE committed config into a full target ClusterConfig, so
/// concurrent requests cannot splice stale member lists together.
enum class ReconfigAction : std::uint8_t {
  kAddVoter = 1,     // add as voter; promotes an existing observer
  kAddObserver = 2,  // add as non-voting observer
  kRemove = 3,       // drop from voters/observers (refused for last voter)
};

struct ReconfigRequest {
  ReconfigAction action = ReconfigAction::kAddVoter;
  NodeId node = kNoNode;
  std::string addr;  // advertised endpoint of a joining server ("" = keep)
};

/// A client write request.
struct Op {
  OpType type = OpType::kCreate;
  std::string path;
  Bytes data;
  /// Version precondition for kSetData/kDelete; -1 = any.
  std::int64_t expected_version = -1;
  /// kCreate: append a monotonically increasing, zero-padded suffix.
  bool sequential = false;
  /// kCreate: the znode lives only as long as the submitting session.
  bool ephemeral = false;
  /// kCreateSession: requested session timeout (the primary clamps it).
  std::uint32_t timeout_ms = 0;
};

/// Envelope for routing one or more Ops to the primary and the result
/// back. Multiple ops form an atomic *multi*: the primary validates all of
/// them against its speculative state (each seeing the effects of the
/// previous ones) and emits either one composite txn or one error txn —
/// all-or-nothing, like ZooKeeper's multi().
struct OpRequest {
  NodeId origin = kNoNode;
  std::uint64_t req_id = 0;
  /// Session on whose behalf the ops run (0 = none). Required for
  /// ephemeral creates and kCloseSession.
  std::uint64_t session_id = 0;
  /// Client-chosen per-session request id (0 = none). Committed results are
  /// recorded against (session_id, cxid) so a reconnecting client can replay
  /// its in-flight request without re-executing it.
  std::uint64_t cxid = 0;
  std::vector<Op> ops;  // size 1 = plain op, >1 = atomic multi
  /// Monotonic ns when the client's frame hit the origin's wire (-1 = not
  /// captured). Travels with the forwarded request so the primary can stamp
  /// kClientRecv into the op's span and charge pre-propose queueing to the
  /// queue_wait stage.
  std::int64_t ingress_ns = -1;
};

enum class TxnKind : std::uint8_t {
  kCreate = 1,
  kDelete = 2,
  kSetData = 3,
  kError = 4,  // failed precondition; applied as a no-op, result delivered
  kMulti = 5,          // composite: `data` holds the encoded sub-txns
  kCloseSession = 6,   // `owner` names the dying session: its table entry
                       // and all its ephemerals go at this txn's zxid
  kCreateSession = 7,  // `owner` = resolved id, `timeout_ms` = granted lease
  kTouchSession = 8,   // `owner` re-validated; no tree change on backups
  kSyncBarrier = 9,    // pure ordering barrier: applied as a no-op, its
                       // zxid marks "everything committed before the sync"
};

/// Fully resolved state change, idempotent by construction.
struct TreeTxn {
  TxnKind kind = TxnKind::kError;
  NodeId origin = kNoNode;
  std::uint64_t req_id = 0;
  std::string path;       // final path (sequential suffix resolved)
  Bytes data;
  std::uint32_t new_version = 0;  // kSetData: resulting version
  Code error = Code::kOk;         // kError: why the op failed
  /// kCreate: ephemeral owner (0 = persistent). kCloseSession /
  /// kCreateSession / kTouchSession: the session itself.
  std::uint64_t owner = 0;
  /// Session the originating request ran under (0 = none) and its client
  /// request id; replicas record the outcome against this pair so replayed
  /// requests after a reconnect are answered, not re-executed.
  std::uint64_t session = 0;
  std::uint64_t cxid = 0;
  /// kCreateSession: granted session timeout.
  std::uint32_t timeout_ms = 0;
};

/// Outcome reported to the submitting client.
struct OpResult {
  Status status;
  std::string path;  // created path (kCreate; first created path for multi)
  Zxid zxid;         // zxid of the txn that carried the result
  /// Multi: every created path, in sub-op order (empty string for non-create
  /// sub-ops). Index of the failing sub-op on error, -1 otherwise.
  std::vector<std::string> paths;
  std::int32_t failed_index = -1;
  /// kCreateSession / kTouchSession: the (resolved) session id.
  std::uint64_t session_id = 0;
};

/// A read's payload plus the zxid it is consistent with: for local tree
/// reads the replica's delivered watermark at answer time, for remote reads
/// the answering server's watermark echoed in the response. Callers fence
/// follow-up reads (theirs or another client's, handed off out of band)
/// at `zxid` to never observe older state.
template <typename T>
struct ReadResult {
  T value{};
  Zxid zxid;
};

[[nodiscard]] Bytes encode_reconfig_request(const ReconfigRequest& r);
[[nodiscard]] Result<ReconfigRequest> decode_reconfig_request(
    std::span<const std::uint8_t> wire);

[[nodiscard]] Bytes encode_op_request(const OpRequest& r);
[[nodiscard]] Result<OpRequest> decode_op_request(
    std::span<const std::uint8_t> wire);

[[nodiscard]] Bytes encode_tree_txn(const TreeTxn& t);
[[nodiscard]] Result<TreeTxn> decode_tree_txn(
    std::span<const std::uint8_t> wire);

/// Multi helpers: pack/unpack sub-txns into a kMulti txn's `data`.
[[nodiscard]] Bytes encode_sub_txns(const std::vector<TreeTxn>& subs);
[[nodiscard]] Result<std::vector<TreeTxn>> decode_sub_txns(
    std::span<const std::uint8_t> blob);

}  // namespace zab::pb
