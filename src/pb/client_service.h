// Server-side client service: accepts external client connections on a TCP
// port and executes their requests against the local replica.
//
// Reads (getData/exists/getChildren/stat) are answered from the local tree;
// writes enter the replicated pipeline (forwarded to the primary if this
// server follows) and are answered when the txn commits. Request execution
// happens on the replica's event loop; a dedicated IO thread owns the
// sockets — the same single-threaded-core discipline as the rest of the
// stack.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "net/runtime_env.h"
#include "pb/client_protocol.h"
#include "pb/replicated_tree.h"

namespace zab::pb {

class ClientService {
 public:
  ClientService(net::RuntimeEnv& env, ReplicatedTree& tree);
  ~ClientService();
  ClientService(const ClientService&) = delete;
  ClientService& operator=(const ClientService&) = delete;

  /// Bind (port 0 = ephemeral) and start serving.
  Status start(const std::string& host, std::uint16_t port);
  void stop();

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;  // doubles as the connection's session id
    std::vector<std::uint8_t> in;
    std::deque<std::uint8_t> out;
  };

  void io_loop();
  void wake();
  /// IO thread: parse complete frames, dispatch to the replica's loop.
  bool parse_frames(Conn& c);
  void dispatch(std::uint64_t conn_id, Bytes frame);
  /// Replica loop thread: run one request, reply when the result is known.
  void execute(std::uint64_t conn_id, const ClientRequest& req);
  /// IO thread: the connection died; its session's ephemerals must go.
  void on_disconnect(std::uint64_t conn_id);
  /// Any thread: queue a response for a connection and wake the IO thread.
  void respond(std::uint64_t conn_id, const ClientResponse& resp);
  /// Any thread: queue a raw payload (watch-event push) for a connection.
  void push_frame(std::uint64_t conn_id, const Bytes& payload);
  /// Replica loop: register a one-shot tree watch that pushes to conn_id.
  void register_watch(std::uint64_t conn_id, ClientOpKind kind,
                      const std::string& path);

  net::RuntimeEnv* env_;
  ReplicatedTree* tree_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread io_thread_;

  std::mutex mu_;  // guards pending_out_
  std::vector<std::pair<std::uint64_t, Bytes>> pending_out_;

  // IO-thread local.
  std::vector<Conn> conns_;
  std::uint64_t session_base_ = 0;  // makes session ids unique across runs
  std::uint64_t next_conn_id_ = 1;
};

}  // namespace zab::pb
