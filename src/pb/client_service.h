// Server-side client service: accepts external client connections on a TCP
// port and executes their requests against the local replica.
//
// Connections and sessions are decoupled (protocol v2): a connection opens
// with a ConnectRequest handshake that attaches to an existing replicated
// session or mints a new one through the broadcast pipeline; losing the
// connection does NOT close the session — only the primary's expiry clock
// (or a graceful kCloseSession) does, so ephemerals survive a reconnect
// within the session timeout. PING frames refresh the lease without
// entering the pipeline.
//
// Reads (getData/exists/getChildren/stat) are answered from the local tree
// at the request's consistency tier (PROTOCOL.md §15): kLocal serves
// immediately; kSession parks the read in a watermark-keyed wait queue
// until this replica's delivered zxid reaches the client's fence (woken
// from the deliver path, bounded by ZAB_READ_FENCE_TIMEOUT_MS, then
// kNotReady so the client rotates); kLinearizable first flushes a sync
// barrier through the broadcast pipeline and serves at the barrier's zxid.
// Reads never fan out to the ensemble — follower read capacity scales with
// server count. Writes enter the replicated pipeline (forwarded to the
// primary if this server follows) and are answered when the txn commits.
// Request execution happens on the replica's event loop; a dedicated IO
// thread owns the sockets — the same single-threaded-core discipline as
// the rest of the stack.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/runtime_env.h"
#include "pb/client_protocol.h"
#include "pb/replicated_tree.h"

namespace zab::pb {

class ClientService {
 public:
  ClientService(net::RuntimeEnv& env, ReplicatedTree& tree);
  ~ClientService();
  ClientService(const ClientService&) = delete;
  ClientService& operator=(const ClientService&) = delete;

  /// Bind (port 0 = ephemeral) and start serving.
  Status start(const std::string& host, std::uint16_t port);
  void stop();

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;  // connection id only; sessions live separately
    std::vector<std::uint8_t> in;
    std::deque<std::uint8_t> out;
  };

  void io_loop();
  void wake();
  /// IO thread: parse complete frames, dispatch to the replica's loop.
  bool parse_frames(Conn& c);
  void dispatch(std::uint64_t conn_id, Bytes frame);
  /// Replica loop thread: run one request, reply when the result is known.
  /// `ingress_ns` is when the frame was parsed off the wire (IO thread);
  /// writes carry it into the replication pipeline for span attribution.
  void execute(std::uint64_t conn_id, const ClientRequest& req,
               std::int64_t ingress_ns);
  /// Replica loop: session handshake — attach-or-create.
  void handle_connect(std::uint64_t conn_id, const ConnectRequest& req);
  void finish_connect(std::uint64_t conn_id, std::uint64_t session_id,
                      bool reattached);
  /// Replica loop: heartbeat — refresh the lease, report leadership.
  void handle_ping(std::uint64_t conn_id, const PingRequest& req);
  /// Session bound to `conn_id` by its handshake (0 = none).
  [[nodiscard]] std::uint64_t session_of(std::uint64_t conn_id) const;
  /// IO thread: the connection died. The session stays alive — the expiry
  /// clock (or a graceful close) reaps it, not the TCP teardown.
  void on_disconnect(std::uint64_t conn_id);
  /// Any thread: queue a response for a connection and wake the IO thread.
  void respond(std::uint64_t conn_id, const ClientResponse& resp);
  /// Any thread: queue a raw payload (watch-event push) for a connection.
  void push_frame(std::uint64_t conn_id, const Bytes& payload);
  /// Replica loop: register a one-shot tree watch that pushes to conn_id.
  void register_watch(std::uint64_t conn_id, ClientOpKind kind,
                      const std::string& path);

  // --- Tiered read path (all on the replica loop) ---------------------------
  /// Answer a read at its consistency fence: serve now if the delivered
  /// watermark already covers it, otherwise park (kSession) or flush a sync
  /// barrier first (kLinearizable).
  void handle_read(std::uint64_t conn_id, const ClientRequest& req,
                   std::int64_t ingress_ns);
  /// Serve from the local tree at the current watermark. The accompanying
  /// watch registers here — the fenced read's apply point — so it cannot
  /// fire for (or swallow) txns ordered before the read's answer.
  /// `parked_since_ns` >= 0 marks a read that waited in the fence queue.
  void serve_read(std::uint64_t conn_id, const ClientRequest& req,
                  std::int64_t ingress_ns, std::int64_t parked_since_ns);
  /// kSync: flush a barrier txn, answer with its commit zxid.
  void handle_sync(std::uint64_t conn_id, const ClientRequest& req);
  /// Queue a read until the delivered watermark reaches `fence`.
  void park_read(std::uint64_t conn_id, const ClientRequest& req,
                 std::int64_t ingress_ns);
  /// Deliver-path hook: serve every parked read whose fence is now covered.
  void wake_parked_reads();
  /// A parked read waited out ZAB_READ_FENCE_TIMEOUT_MS: kNotReady.
  void expire_parked_read(std::uint64_t park_id);
  /// Synthetic span for a read that sat in the fence queue, so parked reads
  /// surface in the slow-op log with their wait charged to queue_wait.
  void note_parked_read(const ClientRequest& req, std::uint64_t session,
                        std::int64_t ingress_ns, std::int64_t parked_since_ns,
                        std::int64_t now_ns);

  net::RuntimeEnv* env_;
  ReplicatedTree* tree_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread io_thread_;

  std::mutex mu_;  // guards pending_out_
  std::vector<std::pair<std::uint64_t, Bytes>> pending_out_;

  // IO-thread local.
  std::vector<Conn> conns_;
  std::uint64_t next_conn_id_ = 1;

  // Replica-loop local: which session each connection authenticated as.
  std::unordered_map<std::uint64_t, std::uint64_t> conn_session_;
  AtomicCounter* c_reconnects_ = nullptr;  // handshakes that re-attached

  // Replica-loop local: reads parked until the delivered watermark reaches
  // their fence, keyed by packed fence zxid (woken in fence order from the
  // deliver path).
  struct ParkedRead {
    std::uint64_t park_id = 0;
    std::uint64_t conn_id = 0;
    ClientRequest req;
    std::int64_t ingress_ns = -1;
    std::int64_t parked_at_ns = -1;
    TimerId timer = 0;
  };
  std::multimap<std::uint64_t, ParkedRead> parked_;
  std::uint64_t next_park_id_ = 1;
  Duration read_fence_timeout_;

  // Read-path observability. Counters are thread-safe; the histograms are
  // loop-owned and only ever recorded on the replica loop.
  AtomicCounter* c_reads_local_ = nullptr;    // answered at current watermark
  AtomicCounter* c_reads_fenced_ = nullptr;   // parked, then served
  AtomicCounter* c_reads_not_ready_ = nullptr;  // parked, timed out
  Histogram* h_read_parked_ns_ = nullptr;     // time spent in the fence queue
  Histogram* h_sync_barrier_ns_ = nullptr;    // kSync / linearizable barrier
};

}  // namespace zab::pb
