#include "pb/client_service.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace zab::pb {

namespace {

constexpr std::uint32_t kMaxFrame = 16u << 20;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

}  // namespace

ClientService::ClientService(net::RuntimeEnv& env, ReplicatedTree& tree)
    : env_(&env), tree_(&tree) {
  c_reconnects_ = &tree.node().metrics().counter("pb.client.reconnects");
}

ClientService::~ClientService() { stop(); }

Status ClientService::start(const std::string& host, std::uint16_t port) {
  if (::pipe(wake_pipe_) != 0) return Status::io_error("pipe");
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::io_error("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::invalid_argument("bad host " + host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::io_error(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) return Status::io_error("listen");
  set_nonblocking(listen_fd_);

  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);

  running_ = true;
  io_thread_ = std::thread([this] { io_loop(); });
  return Status::ok();
}

void ClientService::stop() {
  if (!running_.exchange(false)) {
    if (io_thread_.joinable()) io_thread_.join();
    return;
  }
  wake();
  if (io_thread_.joinable()) io_thread_.join();
  for (auto& c : conns_) {
    if (c.fd >= 0) {
      ::close(c.fd);
      c.fd = -1;
      on_disconnect(c.id);
    }
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void ClientService::wake() {
  const char b = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
}

void ClientService::respond(std::uint64_t conn_id,
                            const ClientResponse& resp) {
  push_frame(conn_id, encode_client_response(resp));
}

void ClientService::push_frame(std::uint64_t conn_id, const Bytes& payload) {
  BufWriter framed(payload.size() + 4);
  framed.u32(static_cast<std::uint32_t>(payload.size()));
  framed.raw(payload);
  {
    std::lock_guard<std::mutex> lk(mu_);
    pending_out_.emplace_back(conn_id, std::move(framed).take());
  }
  wake();
}

void ClientService::register_watch(std::uint64_t conn_id, ClientOpKind kind,
                                   const std::string& path) {
  auto push = [this, conn_id](WatchEvent ev, const std::string& p) {
    // Fires on the replica loop when the txn applies locally; if the
    // connection is gone by delivery time, the frame is simply dropped.
    push_frame(conn_id, encode_watch_event(WatchEventMsg{ev, p}));
  };
  switch (kind) {
    case ClientOpKind::kGetData:
      tree_->tree().watch_data(path, push);
      break;
    case ClientOpKind::kExists:
      if (tree_->exists(path)) {
        tree_->tree().watch_data(path, push);  // change/delete watch
      } else {
        tree_->tree().watch_exists(path, push);  // creation watch
      }
      break;
    case ClientOpKind::kGetChildren:
      tree_->tree().watch_children(path, push);
      break;
    default:
      break;
  }
}

void ClientService::on_disconnect(std::uint64_t conn_id) {
  // Sessions outlive connections (ZooKeeper semantics): only the primary's
  // expiry clock or a graceful kCloseSession reaps the ephemerals. Here we
  // just forget the binding.
  env_->post([this, conn_id] { conn_session_.erase(conn_id); });
}

std::uint64_t ClientService::session_of(std::uint64_t conn_id) const {
  auto it = conn_session_.find(conn_id);
  return it == conn_session_.end() ? 0 : it->second;
}

void ClientService::handle_connect(std::uint64_t conn_id,
                                   const ConnectRequest& req) {
  const std::uint64_t local_last = tree_->node().last_delivered().packed();
  if (req.last_zxid > local_last) {
    // This replica lags what the client already observed; attaching here
    // would let its session travel back in time (and break replay dedup).
    // The client rotates to a caught-up server.
    ConnectResponse resp;
    resp.code = Code::kNotReady;
    resp.last_zxid = local_last;
    push_frame(conn_id, encode_connect_response(resp));
    return;
  }
  if (req.session_id != 0) {
    // Attach-or-create. The attach runs through the pipeline as a
    // kTouchSession txn, so an expiry racing with it is decided by zxid
    // order — and by the time it commits, this replica has applied every
    // txn the session committed before reconnecting (replay dedup relies
    // on that).
    tree_->attach_session(
        req.session_id, [this, conn_id, req](const OpResult& r) {
          if (r.status.is_ok()) {
            c_reconnects_->add();
            finish_connect(conn_id, r.session_id, /*reattached=*/true);
            return;
          }
          // Expired or unknown: fall back to minting a fresh session.
          tree_->create_session(req.timeout_ms, [this,
                                                conn_id](const OpResult& c) {
            if (!c.status.is_ok()) {
              ConnectResponse resp;
              resp.code = c.status.code();
              push_frame(conn_id, encode_connect_response(resp));
              return;
            }
            finish_connect(conn_id, c.session_id, /*reattached=*/false);
          });
        });
    return;
  }
  tree_->create_session(req.timeout_ms, [this, conn_id](const OpResult& r) {
    if (!r.status.is_ok()) {
      ConnectResponse resp;
      resp.code = r.status.code();
      push_frame(conn_id, encode_connect_response(resp));
      return;
    }
    finish_connect(conn_id, r.session_id, /*reattached=*/false);
  });
}

void ClientService::finish_connect(std::uint64_t conn_id,
                                   std::uint64_t session_id, bool reattached) {
  conn_session_[conn_id] = session_id;
  ConnectResponse resp;
  resp.session_id = session_id;
  resp.reattached = reattached;
  resp.last_zxid = tree_->node().last_delivered().packed();
  // The create/touch txn has applied locally by now, so the granted lease
  // is in the replicated table.
  if (const SessionInfo* info = tree_->tree().session(session_id)) {
    resp.timeout_ms = info->timeout_ms;
  }
  push_frame(conn_id, encode_connect_response(resp));
}

void ClientService::handle_ping(std::uint64_t conn_id,
                                const PingRequest& req) {
  PingResponse resp;
  resp.session_id = req.session_id != 0 ? req.session_id
                                        : session_of(conn_id);
  if (resp.session_id != 0) {
    if (tree_->session_alive(resp.session_id)) {
      tree_->touch_session(resp.session_id);
    } else {
      resp.code = Code::kSessionExpired;
    }
  }
  resp.is_leader = tree_->node().is_active_leader();
  push_frame(conn_id, encode_ping_response(resp));
}

void ClientService::dispatch(std::uint64_t conn_id, Bytes frame) {
  // Stamp ingress on the IO thread, before the hop to the replica loop:
  // the span's queue_wait stage must include that hand-off. SystemClock is
  // stateless, so reading it off-loop is safe.
  const TimePoint ingress_ns = env_->now();
  env_->post([this, conn_id, ingress_ns, frame = std::move(frame)] {
    switch (classify_frame(frame)) {
      case FrameType::kConnect: {
        if (auto req = decode_connect_request(frame); req.is_ok()) {
          handle_connect(conn_id, req.value());
          return;
        }
        break;
      }
      case FrameType::kPing: {
        if (auto req = decode_ping_request(frame); req.is_ok()) {
          handle_ping(conn_id, req.value());
          return;
        }
        break;
      }
      default: {
        auto req = decode_client_request(frame);
        if (req.is_ok()) {
          execute(conn_id, req.value(), ingress_ns);
          return;
        }
        // Undecodable — includes retired v1 frames. Ship the decode error's
        // message in `data` so old clients see why, not just a code.
        ZAB_WARN() << "rejecting client frame: "
                   << req.status().to_string();
        ClientResponse resp;
        resp.code = Code::kInvalidArgument;
        const std::string msg = req.status().to_string();
        resp.data.assign(msg.begin(), msg.end());
        respond(conn_id, resp);
        return;
      }
    }
    ClientResponse resp;
    resp.code = Code::kInvalidArgument;
    respond(conn_id, resp);
  });
}

void ClientService::execute(std::uint64_t conn_id, const ClientRequest& req,
                            std::int64_t ingress_ns) {
  ClientResponse resp;
  resp.xid = req.xid;

  switch (req.kind) {
    case ClientOpKind::kGetData: {
      auto v = tree_->get(req.path);
      resp.code = v.status().code();
      if (v.is_ok()) resp.data = v.value();
      if (req.watch && v.is_ok()) {
        register_watch(conn_id, req.kind, req.path);
      }
      break;
    }
    case ClientOpKind::kExists: {
      resp.exists = tree_->exists(req.path);
      if (resp.exists) {
        if (auto s = tree_->stat(req.path); s.is_ok()) resp.stat = s.value();
      }
      if (req.watch) register_watch(conn_id, req.kind, req.path);
      break;
    }
    case ClientOpKind::kGetChildren: {
      auto kids = tree_->children(req.path);
      resp.code = kids.status().code();
      if (kids.is_ok()) {
        resp.paths = kids.value();
        if (req.watch) register_watch(conn_id, req.kind, req.path);
      }
      break;
    }
    case ClientOpKind::kStat: {
      auto s = tree_->stat(req.path);
      resp.code = s.status().code();
      if (s.is_ok()) resp.stat = s.value();
      break;
    }
    case ClientOpKind::kPing: {
      resp.is_leader = tree_->node().is_active_leader();
      if (const std::uint64_t sid = session_of(conn_id); sid != 0) {
        tree_->touch_session(sid);
      }
      break;
    }
    case ClientOpKind::kMntr: {
      // Runs on the replica loop (env->post), so reading the node's
      // histograms here is safe. path == "json" selects JSON exposition
      // (the path field is otherwise unused by kMntr).
      const std::string text = req.path == "json"
                                   ? tree_->node().mntr_json()
                                   : tree_->node().mntr_report();
      resp.data.assign(text.begin(), text.end());
      resp.is_leader = tree_->node().is_active_leader();
      break;
    }
    case ClientOpKind::kSlowLog: {
      // Newest-first JSONL of this replica's slow-op ring. path carries the
      // optional entry limit as decimal text ("" or "0" = everything).
      const std::size_t n = req.path.empty()
                                ? 0
                                : std::strtoull(req.path.c_str(), nullptr, 10);
      const std::string text = tree_->node().slowlog_jsonl(n);
      resp.data.assign(text.begin(), text.end());
      resp.is_leader = tree_->node().is_active_leader();
      break;
    }
    case ClientOpKind::kTrace: {
      // Ship the ring as the binary TraceSnapshot codec; a leader also
      // attaches its per-follower clock-offset estimates ("id:offset_ns")
      // so the puller can merge rings onto the leader timeline.
      ZabNode& node = tree_->node();
      trace::TraceSnapshot snap;
      snap.recorder = node.id();
      snap.events = node.trace().snapshot();
      resp.data = trace::encode_trace_snapshot(snap);
      resp.is_leader = node.is_active_leader();
      if (resp.is_leader) {
        for (const auto& [nid, off] : node.follower_clock_offsets()) {
          resp.paths.push_back(std::to_string(nid) + ":" +
                               std::to_string(off));
        }
      }
      break;
    }
    case ClientOpKind::kWrite: {
      if (req.ops.empty()) {
        resp.code = Code::kInvalidArgument;
        break;
      }
      const std::uint64_t sid = session_of(conn_id);
      // Replay dedup: the client reuses one xid per logical write across
      // retries, and every replica records the committed outcome against
      // (session, cxid). A session's attach txn is ordered after all its
      // committed writes, so by the time a reconnected client replays, the
      // recorded answer (if any) is visible here.
      if (const SessionInfo* info = tree_->tree().session(sid);
          info != nullptr && req.xid != 0 && info->last_cxid == req.xid) {
        resp.code = static_cast<Code>(info->last_code);
        resp.zxid = Zxid::from_packed(info->last_zxid);
        if (!info->last_path.empty()) resp.paths.push_back(info->last_path);
        break;
      }
      const std::uint64_t xid = req.xid;
      tree_->submit_multi(
          req.ops,
          [this, conn_id, xid](const OpResult& r) {
            ClientResponse out;
            out.xid = xid;
            out.code = r.status.code();
            out.zxid = r.zxid;
            out.failed_index = r.failed_index;
            if (!r.path.empty()) out.paths.push_back(r.path);
            for (const auto& p : r.paths) out.paths.push_back(p);
            respond(conn_id, out);
          },
          /*session=*/sid, /*cxid=*/req.xid, ingress_ns);
      return;  // reply happens at commit time
    }
    case ClientOpKind::kCloseSession: {
      const std::uint64_t sid = session_of(conn_id);
      if (sid == 0) {
        resp.code = Code::kSessionExpired;
        break;
      }
      const std::uint64_t xid = req.xid;
      conn_session_.erase(conn_id);
      tree_->close_session(sid, [this, conn_id, xid](const OpResult& r) {
        ClientResponse out;
        out.xid = xid;
        out.code = r.status.code();
        out.zxid = r.zxid;
        respond(conn_id, out);
      });
      return;  // reply happens at commit time
    }
  }
  respond(conn_id, resp);
}

bool ClientService::parse_frames(Conn& c) {
  std::size_t pos = 0;
  while (true) {
    if (c.in.size() - pos < 4) break;
    std::uint32_t len = 0;
    std::memcpy(&len, c.in.data() + pos, 4);
    if (len > kMaxFrame) return false;
    if (c.in.size() - pos < 4 + static_cast<std::size_t>(len)) break;
    Bytes frame(c.in.begin() + static_cast<std::ptrdiff_t>(pos) + 4,
                c.in.begin() + static_cast<std::ptrdiff_t>(pos) + 4 +
                    static_cast<std::ptrdiff_t>(len));
    pos += 4 + len;
    dispatch(c.id, std::move(frame));
  }
  c.in.erase(c.in.begin(), c.in.begin() + static_cast<std::ptrdiff_t>(pos));
  return true;
}

void ClientService::io_loop() {
  while (running_) {
    // Move queued responses into their connections' out buffers.
    {
      std::vector<std::pair<std::uint64_t, Bytes>> out;
      {
        std::lock_guard<std::mutex> lk(mu_);
        out.swap(pending_out_);
      }
      for (auto& [cid, bytes] : out) {
        for (auto& c : conns_) {
          if (c.id == cid && c.fd >= 0) {
            c.out.insert(c.out.end(), bytes.begin(), bytes.end());
            break;
          }
        }
      }
    }

    std::erase_if(conns_, [](const Conn& c) { return c.fd < 0; });
    std::vector<pollfd> pfds;
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (auto& c : conns_) {
      short ev = POLLIN;
      if (!c.out.empty()) ev |= POLLOUT;
      pfds.push_back({c.fd, ev, 0});
    }
    // Connections accepted below this point have no pollfd this round.
    const std::size_t polled = conns_.size();

    const int rc = ::poll(pfds.data(), pfds.size(), 100);
    if (rc < 0 && errno != EINTR) return;
    if (!running_) return;

    if (pfds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (pfds[1].revents & POLLIN) {
      while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        if (!set_nonblocking(fd)) {
          ::close(fd);
          continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        Conn c;
        c.fd = fd;
        c.id = next_conn_id_++;
        conns_.push_back(std::move(c));
      }
    }

    for (std::size_t i = 0; i < polled; ++i) {
      Conn& c = conns_[i];
      const short rev = pfds[2 + i].revents;
      if (rev & (POLLERR | POLLHUP)) {
        ::close(c.fd);
        c.fd = -1;
        on_disconnect(c.id);
        continue;
      }
      if (rev & POLLIN) {
        std::uint8_t buf[16384];
        while (true) {
          const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            c.in.insert(c.in.end(), buf, buf + n);
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          ::close(c.fd);
          c.fd = -1;
          on_disconnect(c.id);
          break;
        }
        if (c.fd >= 0 && !parse_frames(c)) {
          ::close(c.fd);
          c.fd = -1;
          on_disconnect(c.id);
        }
      }
      if (c.fd >= 0 && !c.out.empty()) {
        while (!c.out.empty()) {
          std::uint8_t chunk[16384];
          const std::size_t n = std::min(c.out.size(), sizeof(chunk));
          std::copy_n(c.out.begin(), n, chunk);
          const ssize_t w = ::send(c.fd, chunk, n, MSG_NOSIGNAL);
          if (w > 0) {
            c.out.erase(c.out.begin(),
                        c.out.begin() + static_cast<std::ptrdiff_t>(w));
            continue;
          }
          if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          ::close(c.fd);
          c.fd = -1;
          on_disconnect(c.id);
          break;
        }
      }
    }
  }
}

}  // namespace zab::pb
