#include "pb/client_service.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "common/op_span.h"
#include "pb/admin_status.h"

namespace zab::pb {

namespace {

constexpr std::uint32_t kMaxFrame = 16u << 20;

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

}  // namespace

ClientService::ClientService(net::RuntimeEnv& env, ReplicatedTree& tree)
    : env_(&env), tree_(&tree) {
  auto& m = tree.node().metrics();
  c_reconnects_ = &m.counter("pb.client.reconnects");
  c_reads_local_ = &m.counter("zab.read.served_local");
  c_reads_fenced_ = &m.counter("zab.read.fenced");
  c_reads_not_ready_ = &m.counter("zab.read.not_ready");
  h_read_parked_ns_ = &m.histogram("zab.read.parked_ns");
  h_sync_barrier_ns_ = &m.histogram("zab.sync.barrier_ns");
  read_fence_timeout_ = millis(static_cast<std::int64_t>(std::strtoull(
      env_var_or("ZAB_READ_FENCE_TIMEOUT_MS", "1000").c_str(), nullptr, 10)));
  // Wake parked reads from the deliver path. The handler list is loop-owned
  // and this service is constructed after the node started, so the
  // registration itself must hop onto the loop. Ordering inside a delivery:
  // the tree's own deliver handler was registered first (ReplicatedTree
  // ctor), so by the time this one runs the txn is already applied and the
  // watermark already advanced — a woken read observes the new state.
  env_->post([this] {
    tree_->node().add_deliver_handler(
        [this](const Txn&) { wake_parked_reads(); });
  });
}

ClientService::~ClientService() { stop(); }

Status ClientService::start(const std::string& host, std::uint16_t port) {
  if (::pipe(wake_pipe_) != 0) return Status::io_error("pipe");
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::io_error("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::invalid_argument("bad host " + host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::io_error(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) return Status::io_error("listen");
  set_nonblocking(listen_fd_);

  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);

  running_ = true;
  io_thread_ = std::thread([this] { io_loop(); });
  return Status::ok();
}

void ClientService::stop() {
  if (!running_.exchange(false)) {
    if (io_thread_.joinable()) io_thread_.join();
    return;
  }
  // Drop parked reads on the loop first: their fence timers capture `this`
  // and must not fire after teardown. The loop is still running here (the
  // service always stops before its node's env).
  env_->run_sync([this] {
    for (auto& [fence, pr] : parked_) env_->cancel_timer(pr.timer);
    parked_.clear();
  });
  wake();
  if (io_thread_.joinable()) io_thread_.join();
  for (auto& c : conns_) {
    if (c.fd >= 0) {
      ::close(c.fd);
      c.fd = -1;
      on_disconnect(c.id);
    }
  }
  conns_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void ClientService::wake() {
  const char b = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
}

void ClientService::respond(std::uint64_t conn_id,
                            const ClientResponse& resp) {
  push_frame(conn_id, encode_client_response(resp));
}

void ClientService::push_frame(std::uint64_t conn_id, const Bytes& payload) {
  BufWriter framed(payload.size() + 4);
  framed.u32(static_cast<std::uint32_t>(payload.size()));
  framed.raw(payload);
  {
    std::lock_guard<std::mutex> lk(mu_);
    pending_out_.emplace_back(conn_id, std::move(framed).take());
  }
  wake();
}

void ClientService::register_watch(std::uint64_t conn_id, ClientOpKind kind,
                                   const std::string& path) {
  auto push = [this, conn_id](WatchEvent ev, const std::string& p) {
    // Fires on the replica loop when the txn applies locally; if the
    // connection is gone by delivery time, the frame is simply dropped.
    push_frame(conn_id, encode_watch_event(WatchEventMsg{ev, p}));
  };
  switch (kind) {
    case ClientOpKind::kGetData:
      tree_->tree().watch_data(path, push);
      break;
    case ClientOpKind::kExists:
      if (tree_->exists(path)) {
        tree_->tree().watch_data(path, push);  // change/delete watch
      } else {
        tree_->tree().watch_exists(path, push);  // creation watch
      }
      break;
    case ClientOpKind::kGetChildren:
      tree_->tree().watch_children(path, push);
      break;
    default:
      break;
  }
}

// --- Tiered read path -------------------------------------------------------

void ClientService::handle_read(std::uint64_t conn_id,
                                const ClientRequest& req,
                                std::int64_t ingress_ns) {
  if (req.consistency == ReadConsistency::kLinearizable) {
    // Server-driven barrier: one client round trip. By the time the
    // barrier's callback runs, the barrier txn has delivered locally, so
    // the watermark covers every write committed before this read arrived
    // and the read can be served straight from the callback.
    const std::int64_t start_ns = env_->now();
    const ClientRequest copy = req;
    tree_->sync_barrier(
        [this, conn_id, copy, ingress_ns, start_ns](const OpResult& r) {
          h_sync_barrier_ns_->record(env_->now() - start_ns);
          if (!r.status.is_ok()) {
            ClientResponse resp;
            resp.xid = copy.xid;
            resp.code = r.status.code();
            respond(conn_id, resp);
            return;
          }
          serve_read(conn_id, copy, ingress_ns, /*parked_since_ns=*/-1);
        });
    return;
  }
  const std::uint64_t fence =
      req.consistency == ReadConsistency::kLocal ? 0 : req.fence_zxid;
  if (tree_->node().last_delivered().packed() >= fence) {
    c_reads_local_->add();
    serve_read(conn_id, req, ingress_ns, /*parked_since_ns=*/-1);
    return;
  }
  park_read(conn_id, req, ingress_ns);
}

void ClientService::serve_read(std::uint64_t conn_id, const ClientRequest& req,
                               std::int64_t ingress_ns,
                               std::int64_t parked_since_ns) {
  ClientResponse resp;
  resp.xid = req.xid;
  switch (req.kind) {
    case ClientOpKind::kGetData: {
      auto v = tree_->get(req.path);
      resp.code = v.status().code();
      if (v.is_ok()) resp.data = std::move(v.value().value);
      if (req.watch && v.is_ok()) {
        register_watch(conn_id, req.kind, req.path);
      }
      break;
    }
    case ClientOpKind::kExists: {
      resp.exists = tree_->exists(req.path);
      if (resp.exists) {
        if (auto s = tree_->stat(req.path); s.is_ok()) {
          resp.stat = s.value().value;
        }
      }
      if (req.watch) register_watch(conn_id, req.kind, req.path);
      break;
    }
    case ClientOpKind::kGetChildren: {
      auto kids = tree_->children(req.path);
      resp.code = kids.status().code();
      if (kids.is_ok()) {
        resp.paths = std::move(kids.value().value);
        if (req.watch) register_watch(conn_id, req.kind, req.path);
      }
      break;
    }
    case ClientOpKind::kStat: {
      auto s = tree_->stat(req.path);
      resp.code = s.status().code();
      if (s.is_ok()) resp.stat = s.value().value;
      break;
    }
    default:
      resp.code = Code::kInvalidArgument;
      break;
  }
  // Every read answer carries this replica's delivered watermark: the
  // client's session fence ratchets forward from it, so a later read — here
  // or at another replica — can never observe older state.
  resp.zxid = tree_->node().last_delivered();
  if (parked_since_ns >= 0) {
    const std::int64_t now_ns = env_->now();
    c_reads_fenced_->add();
    h_read_parked_ns_->record(now_ns - parked_since_ns);
    note_parked_read(req, session_of(conn_id), ingress_ns, parked_since_ns,
                     now_ns);
  }
  respond(conn_id, resp);
}

void ClientService::handle_sync(std::uint64_t conn_id,
                                const ClientRequest& req) {
  const std::uint64_t xid = req.xid;
  const std::int64_t start_ns = env_->now();
  tree_->sync_barrier([this, conn_id, xid, start_ns](const OpResult& r) {
    h_sync_barrier_ns_->record(env_->now() - start_ns);
    ClientResponse resp;
    resp.xid = xid;
    resp.code = r.status.code();
    resp.zxid = r.zxid;
    respond(conn_id, resp);
  });
}

void ClientService::park_read(std::uint64_t conn_id, const ClientRequest& req,
                              std::int64_t ingress_ns) {
  ParkedRead pr;
  pr.park_id = next_park_id_++;
  pr.conn_id = conn_id;
  pr.req = req;
  pr.ingress_ns = ingress_ns;
  pr.parked_at_ns = env_->now();
  const std::uint64_t park_id = pr.park_id;
  pr.timer = env_->set_timer(read_fence_timeout_,
                             [this, park_id] { expire_parked_read(park_id); });
  parked_.emplace(req.fence_zxid, std::move(pr));
}

void ClientService::wake_parked_reads() {
  if (parked_.empty()) return;
  const std::uint64_t watermark = tree_->node().last_delivered().packed();
  while (!parked_.empty() && parked_.begin()->first <= watermark) {
    ParkedRead pr = std::move(parked_.begin()->second);
    parked_.erase(parked_.begin());
    env_->cancel_timer(pr.timer);
    serve_read(pr.conn_id, pr.req, pr.ingress_ns, pr.parked_at_ns);
  }
}

void ClientService::expire_parked_read(std::uint64_t park_id) {
  for (auto it = parked_.begin(); it != parked_.end(); ++it) {
    if (it->second.park_id != park_id) continue;
    const ParkedRead pr = std::move(it->second);
    parked_.erase(it);
    c_reads_not_ready_->add();
    h_read_parked_ns_->record(env_->now() - pr.parked_at_ns);
    // The client rotates to a replica whose watermark covers its fence.
    ClientResponse resp;
    resp.xid = pr.req.xid;
    resp.code = Code::kNotReady;
    resp.zxid = tree_->node().last_delivered();
    respond(pr.conn_id, resp);
    return;
  }
}

void ClientService::note_parked_read(const ClientRequest& req,
                                     std::uint64_t session,
                                     std::int64_t ingress_ns,
                                     std::int64_t parked_since_ns,
                                     std::int64_t now_ns) {
  // Reads normally never touch the slow-op machinery; one that sat in the
  // fence queue is exactly the kind of tail the log exists for. Synthesize
  // a span whose queue_wait stage carries the park duration (the serve
  // itself is microseconds) and let the ring's threshold decide admission.
  OpSpan span;
  span.session_id = session;
  span.cxid = req.xid;
  span.zxid = req.fence_zxid;  // the fence it waited for
  span.op_kind = static_cast<std::uint8_t>(req.kind);
  span.path = req.path;
  span.recv_ns = ingress_ns >= 0 ? ingress_ns : parked_since_ns;
  span.propose_ns = now_ns;  // queue_wait = recv -> propose = the park
  span.deliver_ns = now_ns;
  span.reply_ns = now_ns;
  tree_->node().slow_log().observe(span);
}

void ClientService::on_disconnect(std::uint64_t conn_id) {
  // Sessions outlive connections (ZooKeeper semantics): only the primary's
  // expiry clock or a graceful kCloseSession reaps the ephemerals. Here we
  // just forget the binding.
  env_->post([this, conn_id] { conn_session_.erase(conn_id); });
}

std::uint64_t ClientService::session_of(std::uint64_t conn_id) const {
  auto it = conn_session_.find(conn_id);
  return it == conn_session_.end() ? 0 : it->second;
}

void ClientService::handle_connect(std::uint64_t conn_id,
                                   const ConnectRequest& req) {
  const std::uint64_t local_last = tree_->node().last_delivered().packed();
  if (req.last_zxid > local_last) {
    // This replica lags what the client already observed; attaching here
    // would let its session travel back in time (and break replay dedup).
    // The client rotates to a caught-up server.
    ConnectResponse resp;
    resp.code = Code::kNotReady;
    resp.last_zxid = local_last;
    push_frame(conn_id, encode_connect_response(resp));
    return;
  }
  if (req.session_id != 0) {
    // Attach-or-create. The attach runs through the pipeline as a
    // kTouchSession txn, so an expiry racing with it is decided by zxid
    // order — and by the time it commits, this replica has applied every
    // txn the session committed before reconnecting (replay dedup relies
    // on that).
    tree_->attach_session(
        req.session_id, [this, conn_id, req](const OpResult& r) {
          if (r.status.is_ok()) {
            c_reconnects_->add();
            finish_connect(conn_id, r.session_id, /*reattached=*/true);
            return;
          }
          // Expired or unknown: fall back to minting a fresh session.
          tree_->create_session(req.timeout_ms, [this,
                                                conn_id](const OpResult& c) {
            if (!c.status.is_ok()) {
              ConnectResponse resp;
              resp.code = c.status.code();
              push_frame(conn_id, encode_connect_response(resp));
              return;
            }
            finish_connect(conn_id, c.session_id, /*reattached=*/false);
          });
        });
    return;
  }
  tree_->create_session(req.timeout_ms, [this, conn_id](const OpResult& r) {
    if (!r.status.is_ok()) {
      ConnectResponse resp;
      resp.code = r.status.code();
      push_frame(conn_id, encode_connect_response(resp));
      return;
    }
    finish_connect(conn_id, r.session_id, /*reattached=*/false);
  });
}

void ClientService::finish_connect(std::uint64_t conn_id,
                                   std::uint64_t session_id, bool reattached) {
  conn_session_[conn_id] = session_id;
  ConnectResponse resp;
  resp.session_id = session_id;
  resp.reattached = reattached;
  resp.last_zxid = tree_->node().last_delivered().packed();
  // The create/touch txn has applied locally by now, so the granted lease
  // is in the replicated table.
  if (const SessionInfo* info = tree_->tree().session(session_id)) {
    resp.timeout_ms = info->timeout_ms;
  }
  push_frame(conn_id, encode_connect_response(resp));
}

void ClientService::handle_ping(std::uint64_t conn_id,
                                const PingRequest& req) {
  PingResponse resp;
  resp.session_id = req.session_id != 0 ? req.session_id
                                        : session_of(conn_id);
  if (resp.session_id != 0) {
    if (tree_->session_alive(resp.session_id)) {
      tree_->touch_session(resp.session_id);
    } else {
      resp.code = Code::kSessionExpired;
    }
  }
  resp.is_leader = tree_->node().is_active_leader();
  push_frame(conn_id, encode_ping_response(resp));
}

void ClientService::dispatch(std::uint64_t conn_id, Bytes frame) {
  // Stamp ingress on the IO thread, before the hop to the replica loop:
  // the span's queue_wait stage must include that hand-off. SystemClock is
  // stateless, so reading it off-loop is safe.
  const TimePoint ingress_ns = env_->now();
  env_->post([this, conn_id, ingress_ns, frame = std::move(frame)] {
    switch (classify_frame(frame)) {
      case FrameType::kConnect: {
        if (auto req = decode_connect_request(frame); req.is_ok()) {
          handle_connect(conn_id, req.value());
          return;
        }
        break;
      }
      case FrameType::kPing: {
        if (auto req = decode_ping_request(frame); req.is_ok()) {
          handle_ping(conn_id, req.value());
          return;
        }
        break;
      }
      default: {
        auto req = decode_client_request(frame);
        if (req.is_ok()) {
          execute(conn_id, req.value(), ingress_ns);
          return;
        }
        // Undecodable — includes retired v1 frames. Ship the decode error's
        // message in `data` so old clients see why, not just a code.
        ZAB_WARN() << "rejecting client frame: "
                   << req.status().to_string();
        ClientResponse resp;
        resp.code = Code::kInvalidArgument;
        const std::string msg = req.status().to_string();
        resp.data.assign(msg.begin(), msg.end());
        respond(conn_id, resp);
        return;
      }
    }
    ClientResponse resp;
    resp.code = Code::kInvalidArgument;
    respond(conn_id, resp);
  });
}

void ClientService::execute(std::uint64_t conn_id, const ClientRequest& req,
                            std::int64_t ingress_ns) {
  ClientResponse resp;
  resp.xid = req.xid;

  switch (req.kind) {
    case ClientOpKind::kGetData:
    case ClientOpKind::kExists:
    case ClientOpKind::kGetChildren:
    case ClientOpKind::kStat: {
      handle_read(conn_id, req, ingress_ns);
      return;  // reply happens at (or after) the consistency fence
    }
    case ClientOpKind::kSync: {
      handle_sync(conn_id, req);
      return;  // reply happens when the barrier txn commits
    }
    case ClientOpKind::kPing: {
      resp.is_leader = tree_->node().is_active_leader();
      if (const std::uint64_t sid = session_of(conn_id); sid != 0) {
        tree_->touch_session(sid);
      }
      break;
    }
    case ClientOpKind::kMntr: {
      // Runs on the replica loop (env->post), so reading the node's
      // histograms here is safe. path == "json" selects JSON exposition
      // (the path field is otherwise unused by kMntr).
      const std::string text = req.path == "json"
                                   ? tree_->node().mntr_json()
                                   : tree_->node().mntr_report();
      resp.data.assign(text.begin(), text.end());
      resp.is_leader = tree_->node().is_active_leader();
      break;
    }
    case ClientOpKind::kSlowLog: {
      // Newest-first JSONL of this replica's slow-op ring. path carries the
      // optional entry limit as decimal text ("" or "0" = everything).
      const std::size_t n = req.path.empty()
                                ? 0
                                : std::strtoull(req.path.c_str(), nullptr, 10);
      const std::string text = tree_->node().slowlog_jsonl(n);
      resp.data.assign(text.begin(), text.end());
      resp.is_leader = tree_->node().is_active_leader();
      break;
    }
    case ClientOpKind::kTrace: {
      // Ship the ring as the binary TraceSnapshot codec; a leader also
      // attaches its per-follower clock-offset estimates ("id:offset_ns")
      // so the puller can merge rings onto the leader timeline.
      ZabNode& node = tree_->node();
      trace::TraceSnapshot snap;
      snap.recorder = node.id();
      snap.events = node.trace().snapshot();
      resp.data = trace::encode_trace_snapshot(snap);
      resp.is_leader = node.is_active_leader();
      if (resp.is_leader) {
        for (const auto& [nid, off] : node.follower_clock_offsets()) {
          resp.paths.push_back(std::to_string(nid) + ":" +
                               std::to_string(off));
        }
      }
      break;
    }
    case ClientOpKind::kWrite: {
      if (req.ops.empty()) {
        resp.code = Code::kInvalidArgument;
        break;
      }
      const std::uint64_t sid = session_of(conn_id);
      // Replay dedup: the client reuses one xid per logical write across
      // retries, and every replica records the committed outcome against
      // (session, cxid). A session's attach txn is ordered after all its
      // committed writes, so by the time a reconnected client replays, the
      // recorded answer (if any) is visible here.
      if (const SessionInfo* info = tree_->tree().session(sid);
          info != nullptr && req.xid != 0 && info->last_cxid == req.xid) {
        resp.code = static_cast<Code>(info->last_code);
        resp.zxid = Zxid::from_packed(info->last_zxid);
        if (!info->last_path.empty()) resp.paths.push_back(info->last_path);
        break;
      }
      const std::uint64_t xid = req.xid;
      tree_->submit_multi(
          req.ops,
          [this, conn_id, xid](const OpResult& r) {
            ClientResponse out;
            out.xid = xid;
            out.code = r.status.code();
            out.zxid = r.zxid;
            out.failed_index = r.failed_index;
            if (!r.path.empty()) out.paths.push_back(r.path);
            for (const auto& p : r.paths) out.paths.push_back(p);
            respond(conn_id, out);
          },
          /*session=*/sid, /*cxid=*/req.xid, ingress_ns);
      return;  // reply happens at commit time
    }
    case ClientOpKind::kReconfig: {
      if (req.ops.size() != 1 ||
          req.ops.front().type != OpType::kReconfig) {
        resp.code = Code::kInvalidArgument;
        break;
      }
      const std::uint64_t xid = req.xid;
      // No (session, cxid) stamping: a replayed reconfig re-resolves against
      // the then-active config, and duplicates fail cleanly (kExists /
      // kNotFound) instead of splicing a stale member list back in.
      tree_->submit(
          req.ops.front(),
          [this, conn_id, xid](const OpResult& r) {
            ClientResponse out;
            out.xid = xid;
            out.code = r.status.code();
            out.zxid = r.zxid;
            respond(conn_id, out);
          },
          /*session=*/0, /*cxid=*/0, ingress_ns);
      return;  // reply happens when the config txn commits
    }
    case ClientOpKind::kConfig: {
      const ClusterConfig& c = tree_->node().cluster_config();
      const std::string text = cluster_config_json(c);
      resp.data.assign(text.begin(), text.end());
      auto addr_of = [&c](NodeId n) {
        auto it = c.addrs.find(n);
        return it == c.addrs.end() ? std::string() : it->second;
      };
      for (const NodeId v : c.voters) {
        resp.paths.push_back(std::to_string(v) + ":voter:" + addr_of(v));
      }
      for (const NodeId o : c.observers) {
        resp.paths.push_back(std::to_string(o) + ":observer:" + addr_of(o));
      }
      resp.zxid = c.config_zxid;
      resp.is_leader = tree_->node().is_active_leader();
      break;
    }
    case ClientOpKind::kCloseSession: {
      const std::uint64_t sid = session_of(conn_id);
      if (sid == 0) {
        resp.code = Code::kSessionExpired;
        break;
      }
      const std::uint64_t xid = req.xid;
      conn_session_.erase(conn_id);
      tree_->close_session(sid, [this, conn_id, xid](const OpResult& r) {
        ClientResponse out;
        out.xid = xid;
        out.code = r.status.code();
        out.zxid = r.zxid;
        respond(conn_id, out);
      });
      return;  // reply happens at commit time
    }
  }
  respond(conn_id, resp);
}

bool ClientService::parse_frames(Conn& c) {
  std::size_t pos = 0;
  while (true) {
    if (c.in.size() - pos < 4) break;
    std::uint32_t len = 0;
    std::memcpy(&len, c.in.data() + pos, 4);
    if (len > kMaxFrame) return false;
    if (c.in.size() - pos < 4 + static_cast<std::size_t>(len)) break;
    Bytes frame(c.in.begin() + static_cast<std::ptrdiff_t>(pos) + 4,
                c.in.begin() + static_cast<std::ptrdiff_t>(pos) + 4 +
                    static_cast<std::ptrdiff_t>(len));
    pos += 4 + len;
    dispatch(c.id, std::move(frame));
  }
  c.in.erase(c.in.begin(), c.in.begin() + static_cast<std::ptrdiff_t>(pos));
  return true;
}

void ClientService::io_loop() {
  while (running_) {
    // Move queued responses into their connections' out buffers.
    {
      std::vector<std::pair<std::uint64_t, Bytes>> out;
      {
        std::lock_guard<std::mutex> lk(mu_);
        out.swap(pending_out_);
      }
      for (auto& [cid, bytes] : out) {
        for (auto& c : conns_) {
          if (c.id == cid && c.fd >= 0) {
            c.out.insert(c.out.end(), bytes.begin(), bytes.end());
            break;
          }
        }
      }
    }

    std::erase_if(conns_, [](const Conn& c) { return c.fd < 0; });
    std::vector<pollfd> pfds;
    pfds.push_back({wake_pipe_[0], POLLIN, 0});
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (auto& c : conns_) {
      short ev = POLLIN;
      if (!c.out.empty()) ev |= POLLOUT;
      pfds.push_back({c.fd, ev, 0});
    }
    // Connections accepted below this point have no pollfd this round.
    const std::size_t polled = conns_.size();

    const int rc = ::poll(pfds.data(), pfds.size(), 100);
    if (rc < 0 && errno != EINTR) return;
    if (!running_) return;

    if (pfds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (pfds[1].revents & POLLIN) {
      while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        if (!set_nonblocking(fd)) {
          ::close(fd);
          continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        Conn c;
        c.fd = fd;
        c.id = next_conn_id_++;
        conns_.push_back(std::move(c));
      }
    }

    for (std::size_t i = 0; i < polled; ++i) {
      Conn& c = conns_[i];
      const short rev = pfds[2 + i].revents;
      if (rev & (POLLERR | POLLHUP)) {
        ::close(c.fd);
        c.fd = -1;
        on_disconnect(c.id);
        continue;
      }
      if (rev & POLLIN) {
        std::uint8_t buf[16384];
        while (true) {
          const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            c.in.insert(c.in.end(), buf, buf + n);
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          ::close(c.fd);
          c.fd = -1;
          on_disconnect(c.id);
          break;
        }
        if (c.fd >= 0 && !parse_frames(c)) {
          ::close(c.fd);
          c.fd = -1;
          on_disconnect(c.id);
        }
      }
      if (c.fd >= 0 && !c.out.empty()) {
        while (!c.out.empty()) {
          std::uint8_t chunk[16384];
          const std::size_t n = std::min(c.out.size(), sizeof(chunk));
          std::copy_n(c.out.begin(), n, chunk);
          const ssize_t w = ::send(c.fd, chunk, n, MSG_NOSIGNAL);
          if (w > 0) {
            c.out.erase(c.out.begin(),
                        c.out.begin() + static_cast<std::ptrdiff_t>(w));
            continue;
          }
          if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          ::close(c.fd);
          c.fd = -1;
          on_disconnect(c.id);
          break;
        }
      }
    }
  }
}

}  // namespace zab::pb
