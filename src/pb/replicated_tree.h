// ReplicatedTree: the primary-backup coordination service on top of Zab.
//
// Each replica hosts a DataTree and a ZabNode. Writes submitted at any
// replica are routed to the primary (the active Zab leader), which
// *executes* them against its speculative state — applied tree plus the
// effects of still-uncommitted txns, ZooKeeper's outstanding-change table —
// and broadcasts the resulting idempotent transaction. Every replica applies
// delivered transactions in zxid order; the origin replica additionally
// completes the client's callback. Reads are served locally and stamped
// with the replica's delivered watermark (ReadResult), so callers can fence
// later reads; sync_barrier() flushes a no-op txn through the pipeline for
// linearizable read fencing (PROTOCOL.md §15).
#pragma once

#include <functional>
#include <map>
#include <set>
#include <unordered_map>

#include "pb/data_tree.h"
#include "pb/ops.h"
#include "pb/session_tracker.h"
#include "zab/zab_node.h"

namespace zab::pb {

struct TreeStats {
  std::uint64_t writes_submitted = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t writes_failed = 0;
  std::uint64_t txns_applied = 0;
};

class ReplicatedTree {
 public:
  using ResultFn = std::function<void(const OpResult&)>;

  /// Wires itself into `node` (deliver/request/snapshot handlers). The node
  /// must not have been started yet.
  explicit ReplicatedTree(ZabNode& node);

  // --- Client write API (asynchronous; cb fires when the txn commits) -------
  void create(const std::string& path, Bytes data, ResultFn cb,
              bool sequential = false);
  void set_data(const std::string& path, Bytes data,
                std::int64_t expected_version, ResultFn cb);
  void remove(const std::string& path, std::int64_t expected_version,
              ResultFn cb);
  /// `session` (0 = none) attributes the ops to a client session; required
  /// for ephemeral creates and close_session. `cxid` (0 = none) is the
  /// client's per-session request id: committed outcomes are recorded
  /// against (session, cxid) on every replica so a reconnecting client can
  /// replay its in-flight request without re-executing it.
  /// `ingress_ns` (monotonic, -1 = not captured) is when the client's frame
  /// hit this replica's wire; it rides the forwarded request so the primary
  /// can attribute pre-propose queueing to the op's span.
  void submit(Op op, ResultFn cb, std::uint64_t session = 0,
              std::uint64_t cxid = 0, std::int64_t ingress_ns = -1);
  /// Atomic multi (ZooKeeper-style): all ops succeed and apply as one txn,
  /// or none do; on failure the result carries the failing sub-op's index.
  void submit_multi(std::vector<Op> ops, ResultFn cb,
                    std::uint64_t session = 0, std::uint64_t cxid = 0,
                    std::int64_t ingress_ns = -1);
  /// Flush a kSyncBarrier no-op through the broadcast pipeline. The callback
  /// fires when the barrier delivers locally, so at that point this
  /// replica's watermark >= the result's zxid and a read served from the
  /// callback observes every write committed before the sync was issued.
  /// Works from followers too (forwarded to the primary like any write).
  void sync_barrier(ResultFn cb);
  /// Membership change (PROTOCOL.md §16). Routed to the primary like any
  /// write; the primary resolves the delta against its active config and
  /// pushes the new config through the broadcast pipeline. The callback's
  /// zxid is the activation point of the new config.
  void reconfig(const ReconfigRequest& rc, ResultFn cb);

  // --- Sessions (replicated state; the primary owns the expiry clock) -------
  /// Mint a durable session: the primary resolves a cluster-unique id
  /// ((epoch << 32) | counter) and the granted lease travels as a
  /// kCreateSession txn, so every replica tracks it. The result carries the
  /// id in `session_id`.
  void create_session(std::uint32_t timeout_ms, ResultFn cb);
  /// Re-attach to an existing session after a reconnect. Goes through the
  /// broadcast pipeline as kTouchSession so the expiry-vs-reattach race is
  /// decided by zxid order: fails with kSessionExpired if a kCloseSession
  /// was (speculatively) ordered first.
  void attach_session(std::uint64_t session, ResultFn cb);
  /// Lightweight liveness heartbeat: refreshes the primary's lease without
  /// entering the broadcast pipeline (fire-and-forget; forwarded to the
  /// leader when called on a follower).
  void touch_session(std::uint64_t session);
  /// Delete the session and every ephemeral it owns (one replicated txn).
  void close_session(std::uint64_t session, ResultFn cb);
  [[nodiscard]] std::size_t active_sessions() const {
    return tree_.sessions().size();
  }
  /// True when `session` exists here and is not (speculatively) closing.
  [[nodiscard]] bool session_alive(std::uint64_t session) const;

  // --- Local reads ------------------------------------------------------------
  // Answered from this replica's applied tree and stamped with its delivered
  // watermark: `zxid` is the fence a caller passes to later reads (here or
  // at another replica) to never observe older state.
  [[nodiscard]] Result<ReadResult<Bytes>> get(const std::string& path) const {
    auto v = tree_.get_data(path);
    if (!v.is_ok()) return v.status();
    return ReadResult<Bytes>{std::move(v).take(), node_->last_delivered()};
  }
  [[nodiscard]] bool exists(const std::string& path) const {
    return tree_.exists(path);
  }
  [[nodiscard]] Result<ReadResult<std::vector<std::string>>> children(
      const std::string& path) const {
    auto v = tree_.get_children(path);
    if (!v.is_ok()) return v.status();
    return ReadResult<std::vector<std::string>>{std::move(v).take(),
                                                node_->last_delivered()};
  }
  [[nodiscard]] Result<ReadResult<Stat>> stat(const std::string& path) const {
    auto v = tree_.stat(path);
    if (!v.is_ok()) return v.status();
    return ReadResult<Stat>{v.value(), node_->last_delivered()};
  }
  [[nodiscard]] DataTree& tree() { return tree_; }
  [[nodiscard]] const TreeStats& stats() const { return stats_; }
  [[nodiscard]] ZabNode& node() { return *node_; }

  /// Fail every pending request older than `cutoff` with kTimeout (drive
  /// from the client's retry loop; uncommitted ops die with their epoch).
  void expire_pending_before(TimePoint cutoff);

 private:
  /// Speculative view of a path on the primary: applied state + effects of
  /// txns broadcast but not yet applied (ZooKeeper's ChangeRecord).
  struct ChangeRecord {
    bool exists = false;
    std::uint32_t version = 0;
    std::uint32_t cversion = 0;
    std::uint64_t owner = 0;        // ephemeral owner (0 = persistent)
    std::uint32_t outstanding = 0;  // txns in flight touching this path
  };

  using Overlay = std::map<std::string, ChangeRecord>;

  void handle_request(Bytes payload);  // leader-side prep
  /// Leader-side kReconfig resolution: delta -> full target config ->
  /// ZabNode::propose_reconfig. Validation failures answer through the
  /// pipeline as kError txns, like failed write preconditions.
  void handle_reconfig(const OpRequest& r);
  /// Validate one op against applied state + outstanding_ + overlay and
  /// produce its resolved txn (kError on failed precondition). On success
  /// the op's effects are folded into `overlay` so later ops of the same
  /// multi observe them.
  TreeTxn prep(const Op& op, NodeId origin, std::uint64_t req_id,
               std::uint64_t session, Overlay& overlay);
  void on_deliver(const Txn& txn);
  void apply(const TreeTxn& t, Zxid zxid);
  void apply_one(const TreeTxn& t, Zxid zxid);
  [[nodiscard]] ChangeRecord speculative(const std::string& path,
                                         const Overlay& overlay) const;
  void note_outstanding(const std::string& path, const ChangeRecord& cr);
  void record_outstanding_for(const TreeTxn& sub, const Overlay& overlay);
  void release_outstanding_for(const TreeTxn& sub);
  void complete(const TreeTxn& t, Zxid zxid, const Status& status);

  // --- Session internals ----------------------------------------------------
  /// Heartbeat-cadence hook, active leader only: lazily (re)builds the
  /// expiry tracker after a leadership change and proposes kCloseSession
  /// for every expired session.
  void leader_tick();
  void rebuild_tracker(TimePoint now);
  [[nodiscard]] std::uint64_t alloc_session_id();
  [[nodiscard]] std::uint32_t clamp_timeout(std::uint32_t requested_ms) const;
  /// Leader-side speculative bookkeeping after a successful broadcast
  /// (mirrors record_outstanding_for).
  void record_session_effects(const TreeTxn& sub);
  /// Replica-side bookkeeping at delivery: table gauge, dedup recording,
  /// and (on the leader) reconciling the speculative sets + tracker.
  void note_session_txn(const TreeTxn& t, Zxid zxid);

  ZabNode* node_;
  DataTree tree_;
  TreeStats stats_;
  std::map<std::string, ChangeRecord> outstanding_;
  struct Pending {
    ResultFn cb;
    TimePoint submitted;
  };
  std::unordered_map<std::uint64_t, Pending> pending_;  // req_id -> cb
  std::uint64_t next_req_id_ = 1;

  // --- Session state --------------------------------------------------------
  SessionTracker tracker_;       // leader-only expiry clock
  bool tracker_valid_ = false;   // false until rebuilt on this leadership
  /// kCreateSession broadcast but not yet applied: already attachable.
  std::set<std::uint64_t> pending_sessions_;
  /// kCloseSession broadcast but not yet applied: no longer attachable —
  /// this is what makes the expiry-vs-reattach race deterministic.
  std::set<std::uint64_t> closing_sessions_;
  std::uint32_t session_counter_ = 0;  // low half of allocated ids
  AtomicCounter* c_sessions_created_ = nullptr;
  AtomicCounter* c_sessions_expired_ = nullptr;
  AtomicCounter* c_sessions_reattached_ = nullptr;
  Gauge* g_sessions_active_ = nullptr;
};

}  // namespace zab::pb
