// ReplicatedTree: the primary-backup coordination service on top of Zab.
//
// Each replica hosts a DataTree and a ZabNode. Writes submitted at any
// replica are routed to the primary (the active Zab leader), which
// *executes* them against its speculative state — applied tree plus the
// effects of still-uncommitted txns, ZooKeeper's outstanding-change table —
// and broadcasts the resulting idempotent transaction. Every replica applies
// delivered transactions in zxid order; the origin replica additionally
// completes the client's callback. Reads are served locally (ZooKeeper's
// consistency model: sequential consistency per client, not linearizable
// reads).
#pragma once

#include <functional>
#include <map>
#include <unordered_map>

#include "pb/data_tree.h"
#include "pb/ops.h"
#include "zab/zab_node.h"

namespace zab::pb {

struct TreeStats {
  std::uint64_t writes_submitted = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t writes_failed = 0;
  std::uint64_t txns_applied = 0;
};

class ReplicatedTree {
 public:
  using ResultFn = std::function<void(const OpResult&)>;

  /// Wires itself into `node` (deliver/request/snapshot handlers). The node
  /// must not have been started yet.
  explicit ReplicatedTree(ZabNode& node);

  // --- Client write API (asynchronous; cb fires when the txn commits) -------
  void create(const std::string& path, Bytes data, ResultFn cb,
              bool sequential = false);
  void set_data(const std::string& path, Bytes data,
                std::int64_t expected_version, ResultFn cb);
  void remove(const std::string& path, std::int64_t expected_version,
              ResultFn cb);
  /// `session` (0 = none) attributes the ops to a client session; required
  /// for ephemeral creates and close_session.
  void submit(Op op, ResultFn cb, std::uint64_t session = 0);
  /// Atomic multi (ZooKeeper-style): all ops succeed and apply as one txn,
  /// or none do; on failure the result carries the failing sub-op's index.
  void submit_multi(std::vector<Op> ops, ResultFn cb,
                    std::uint64_t session = 0);
  /// Delete every ephemeral owned by `session` (one replicated txn).
  void close_session(std::uint64_t session, ResultFn cb);

  // --- Local reads ------------------------------------------------------------
  [[nodiscard]] Result<Bytes> get(const std::string& path) const {
    return tree_.get_data(path);
  }
  [[nodiscard]] bool exists(const std::string& path) const {
    return tree_.exists(path);
  }
  [[nodiscard]] Result<std::vector<std::string>> children(
      const std::string& path) const {
    return tree_.get_children(path);
  }
  [[nodiscard]] Result<Stat> stat(const std::string& path) const {
    return tree_.stat(path);
  }
  [[nodiscard]] DataTree& tree() { return tree_; }
  [[nodiscard]] const TreeStats& stats() const { return stats_; }
  [[nodiscard]] ZabNode& node() { return *node_; }

  /// Fail every pending request older than `cutoff` with kTimeout (drive
  /// from the client's retry loop; uncommitted ops die with their epoch).
  void expire_pending_before(TimePoint cutoff);

 private:
  /// Speculative view of a path on the primary: applied state + effects of
  /// txns broadcast but not yet applied (ZooKeeper's ChangeRecord).
  struct ChangeRecord {
    bool exists = false;
    std::uint32_t version = 0;
    std::uint32_t cversion = 0;
    std::uint64_t owner = 0;        // ephemeral owner (0 = persistent)
    std::uint32_t outstanding = 0;  // txns in flight touching this path
  };

  using Overlay = std::map<std::string, ChangeRecord>;

  void handle_request(Bytes payload);  // leader-side prep
  /// Validate one op against applied state + outstanding_ + overlay and
  /// produce its resolved txn (kError on failed precondition). On success
  /// the op's effects are folded into `overlay` so later ops of the same
  /// multi observe them.
  TreeTxn prep(const Op& op, NodeId origin, std::uint64_t req_id,
               std::uint64_t session, Overlay& overlay);
  void on_deliver(const Txn& txn);
  void apply(const TreeTxn& t, Zxid zxid);
  void apply_one(const TreeTxn& t, Zxid zxid);
  [[nodiscard]] ChangeRecord speculative(const std::string& path,
                                         const Overlay& overlay) const;
  void note_outstanding(const std::string& path, const ChangeRecord& cr);
  void record_outstanding_for(const TreeTxn& sub, const Overlay& overlay);
  void release_outstanding_for(const TreeTxn& sub);
  void complete(const TreeTxn& t, Zxid zxid, const Status& status);

  ZabNode* node_;
  DataTree tree_;
  TreeStats stats_;
  std::map<std::string, ChangeRecord> outstanding_;
  struct Pending {
    ResultFn cb;
    TimePoint submitted;
  };
  std::unordered_map<std::uint64_t, Pending> pending_;  // req_id -> cb
  std::uint64_t next_req_id_ = 1;
};

}  // namespace zab::pb
