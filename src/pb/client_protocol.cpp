#include "pb/client_protocol.h"

namespace zab::pb {

namespace {
constexpr std::uint8_t kReqTag = 0x43;    // 'C'
constexpr std::uint8_t kRespTag = 0x63;   // 'c'
constexpr std::uint8_t kWatchTag = 0x57;  // 'W'

void encode_stat(BufWriter& w, const Stat& s) {
  w.zxid(s.czxid);
  w.zxid(s.mzxid);
  w.u32(s.version);
  w.u32(s.cversion);
  w.u32(s.num_children);
  w.u64(s.data_length);
  w.u64(s.ephemeral_owner);
}

Stat decode_stat(BufReader& r) {
  Stat s;
  s.czxid = r.zxid();
  s.mzxid = r.zxid();
  s.version = r.u32();
  s.cversion = r.u32();
  s.num_children = r.u32();
  s.data_length = r.u64();
  s.ephemeral_owner = r.u64();
  return s;
}

}  // namespace

Bytes encode_client_request(const ClientRequest& r) {
  BufWriter w(64);
  w.u8(kReqTag);
  w.u64(r.xid);
  w.u8(static_cast<std::uint8_t>(r.kind));
  w.str(r.path);
  w.varint(r.ops.size());
  for (const Op& op : r.ops) {
    w.u8(static_cast<std::uint8_t>(op.type));
    w.str(op.path);
    w.bytes(op.data);
    w.i64(op.expected_version);
    w.boolean(op.sequential);
    w.boolean(op.ephemeral);
  }
  w.boolean(r.watch);
  return std::move(w).take();
}

Result<ClientRequest> decode_client_request(
    std::span<const std::uint8_t> wire) {
  BufReader r(wire);
  if (r.u8() != kReqTag) return Status::corruption("not a ClientRequest");
  ClientRequest out;
  out.xid = r.u64();
  const auto kind = r.u8();
  if (kind < 1 || kind > 8) return Status::corruption("bad request kind");
  out.kind = static_cast<ClientOpKind>(kind);
  out.path = r.str();
  const auto n = r.varint();
  if (n > 1024) return Status::corruption("too many ops");
  for (std::uint64_t i = 0; i < n; ++i) {
    Op op;
    const auto type = r.u8();
    if (type < 1 || type > 3) return Status::corruption("bad op type");
    op.type = static_cast<OpType>(type);
    op.path = r.str();
    op.data = r.bytes();
    op.expected_version = r.i64();
    op.sequential = r.boolean();
    op.ephemeral = r.boolean();
    out.ops.push_back(std::move(op));
  }
  out.watch = r.boolean();
  if (!r.ok() || !r.at_end()) return Status::corruption("short request");
  return out;
}

Bytes encode_client_response(const ClientResponse& r) {
  BufWriter w(64);
  w.u8(kRespTag);
  w.u64(r.xid);
  w.u8(static_cast<std::uint8_t>(r.code));
  w.bytes(r.data);
  w.varint(r.paths.size());
  for (const auto& p : r.paths) w.str(p);
  encode_stat(w, r.stat);
  w.boolean(r.exists);
  w.i64(r.failed_index);
  w.zxid(r.zxid);
  w.boolean(r.is_leader);
  return std::move(w).take();
}

Result<ClientResponse> decode_client_response(
    std::span<const std::uint8_t> wire) {
  BufReader r(wire);
  if (r.u8() != kRespTag) return Status::corruption("not a ClientResponse");
  ClientResponse out;
  out.xid = r.u64();
  out.code = static_cast<Code>(r.u8());
  out.data = r.bytes();
  const auto n = r.varint();
  if (n > 100000) return Status::corruption("too many paths");
  for (std::uint64_t i = 0; i < n; ++i) out.paths.push_back(r.str());
  out.stat = decode_stat(r);
  out.exists = r.boolean();
  out.failed_index = static_cast<std::int32_t>(r.i64());
  out.zxid = r.zxid();
  out.is_leader = r.boolean();
  if (!r.ok() || !r.at_end()) return Status::corruption("short response");
  return out;
}

Bytes encode_watch_event(const WatchEventMsg& w) {
  BufWriter out(w.path.size() + 8);
  out.u8(kWatchTag);
  out.u8(static_cast<std::uint8_t>(w.event));
  out.str(w.path);
  return std::move(out).take();
}

Result<WatchEventMsg> decode_watch_event(std::span<const std::uint8_t> wire) {
  BufReader r(wire);
  if (r.u8() != kWatchTag) return Status::corruption("not a WatchEvent");
  WatchEventMsg out;
  const auto ev = r.u8();
  if (ev > static_cast<std::uint8_t>(WatchEvent::kChildrenChanged)) {
    return Status::corruption("bad watch event");
  }
  out.event = static_cast<WatchEvent>(ev);
  out.path = r.str();
  if (!r.ok() || !r.at_end()) return Status::corruption("short WatchEvent");
  return out;
}

bool is_watch_event_frame(std::span<const std::uint8_t> wire) {
  return !wire.empty() && wire[0] == kWatchTag;
}

}  // namespace zab::pb
