#include "pb/client_protocol.h"

namespace zab::pb {

namespace {
constexpr std::uint8_t kReqTag = 0x43;      // 'C'
constexpr std::uint8_t kRespTag = 0x63;     // 'c'
constexpr std::uint8_t kWatchTag = 0x57;    // 'W'
constexpr std::uint8_t kConnectTag = 0x48;  // 'H' (handshake)
constexpr std::uint8_t kConnectAckTag = 0x68;  // 'h'
constexpr std::uint8_t kPingTag = 0x50;     // 'P'
constexpr std::uint8_t kPongTag = 0x70;     // 'p'

void put_header(BufWriter& w, std::uint8_t tag) {
  w.u8(kWireMagic);
  w.u8(kWireVersion);
  w.u8(tag);
}

/// Consumes the 3-byte header, expecting `tag`. A frame starting with one
/// of the retired v1 tag bytes gets a deliberate, actionable error: v1
/// frames had no magic, so their first byte lands where v2 keeps the magic.
Status check_header(BufReader& r, std::uint8_t tag, const char* what) {
  const std::uint8_t b0 = r.u8();
  if (b0 == kReqTag || b0 == kRespTag || b0 == kWatchTag) {
    return Status::corruption(
        "unversioned v1 client frame; this server speaks protocol v3 "
        "(sessions + fenced reads) — upgrade the client library");
  }
  if (b0 != kWireMagic) {
    return Status::corruption(std::string("not a client frame (bad magic), "
                                          "expected ") +
                              what);
  }
  if (const auto v = r.u8(); v != kWireVersion) {
    return Status::corruption("unsupported client protocol version " +
                              std::to_string(int{v}) + " (this server: v" +
                              std::to_string(int{kWireVersion}) + ")");
  }
  if (r.u8() != tag) {
    return Status::corruption(std::string("unexpected frame, wanted ") + what);
  }
  return Status::ok();
}

void encode_stat(BufWriter& w, const Stat& s) {
  w.zxid(s.czxid);
  w.zxid(s.mzxid);
  w.u32(s.version);
  w.u32(s.cversion);
  w.u32(s.num_children);
  w.u64(s.data_length);
  w.u64(s.ephemeral_owner);
}

Stat decode_stat(BufReader& r) {
  Stat s;
  s.czxid = r.zxid();
  s.mzxid = r.zxid();
  s.version = r.u32();
  s.cversion = r.u32();
  s.num_children = r.u32();
  s.data_length = r.u64();
  s.ephemeral_owner = r.u64();
  return s;
}

}  // namespace

FrameType classify_frame(std::span<const std::uint8_t> wire) {
  if (wire.size() < 3 || wire[0] != kWireMagic || wire[1] != kWireVersion) {
    return FrameType::kInvalid;
  }
  switch (wire[2]) {
    case kReqTag: return FrameType::kRequest;
    case kRespTag: return FrameType::kResponse;
    case kWatchTag: return FrameType::kWatchEvent;
    case kConnectTag: return FrameType::kConnect;
    case kConnectAckTag: return FrameType::kConnectAck;
    case kPingTag: return FrameType::kPing;
    case kPongTag: return FrameType::kPong;
    default: return FrameType::kInvalid;
  }
}

Bytes encode_client_request(const ClientRequest& r) {
  BufWriter w(64);
  put_header(w, kReqTag);
  w.u64(r.xid);
  w.u8(static_cast<std::uint8_t>(r.kind));
  w.str(r.path);
  w.varint(r.ops.size());
  for (const Op& op : r.ops) {
    w.u8(static_cast<std::uint8_t>(op.type));
    w.str(op.path);
    w.bytes(op.data);
    w.i64(op.expected_version);
    w.boolean(op.sequential);
    w.boolean(op.ephemeral);
  }
  w.boolean(r.watch);
  w.u8(static_cast<std::uint8_t>(r.consistency));
  w.u64(r.fence_zxid);
  return std::move(w).take();
}

Result<ClientRequest> decode_client_request(
    std::span<const std::uint8_t> wire) {
  BufReader r(wire);
  if (Status st = check_header(r, kReqTag, "ClientRequest"); !st.is_ok()) {
    return st;
  }
  ClientRequest out;
  out.xid = r.u64();
  const auto kind = r.u8();
  if (kind < 1 || kind > 13) return Status::corruption("bad request kind");
  out.kind = static_cast<ClientOpKind>(kind);
  out.path = r.str();
  const auto n = r.varint();
  if (n > 1024) return Status::corruption("too many ops");
  for (std::uint64_t i = 0; i < n; ++i) {
    Op op;
    const auto type = r.u8();
    // Writes carry tree ops (create/delete/set); a kReconfig request
    // carries exactly one OpType::kReconfig op whose data holds the
    // ReconfigRequest.
    if ((type < 1 || type > 3) &&
        type != static_cast<std::uint8_t>(OpType::kReconfig)) {
      return Status::corruption("bad op type");
    }
    op.type = static_cast<OpType>(type);
    op.path = r.str();
    op.data = r.bytes();
    op.expected_version = r.i64();
    op.sequential = r.boolean();
    op.ephemeral = r.boolean();
    out.ops.push_back(std::move(op));
  }
  out.watch = r.boolean();
  const auto tier = r.u8();
  if (tier > static_cast<std::uint8_t>(ReadConsistency::kLinearizable)) {
    return Status::corruption("bad read consistency tier");
  }
  out.consistency = static_cast<ReadConsistency>(tier);
  out.fence_zxid = r.u64();
  if (!r.ok() || !r.at_end()) return Status::corruption("short request");
  return out;
}

Bytes encode_client_response(const ClientResponse& r) {
  BufWriter w(64);
  put_header(w, kRespTag);
  w.u64(r.xid);
  w.u8(static_cast<std::uint8_t>(r.code));
  w.bytes(r.data);
  w.varint(r.paths.size());
  for (const auto& p : r.paths) w.str(p);
  encode_stat(w, r.stat);
  w.boolean(r.exists);
  w.i64(r.failed_index);
  w.zxid(r.zxid);
  w.boolean(r.is_leader);
  return std::move(w).take();
}

Result<ClientResponse> decode_client_response(
    std::span<const std::uint8_t> wire) {
  BufReader r(wire);
  if (Status st = check_header(r, kRespTag, "ClientResponse"); !st.is_ok()) {
    return st;
  }
  ClientResponse out;
  out.xid = r.u64();
  out.code = static_cast<Code>(r.u8());
  out.data = r.bytes();
  const auto n = r.varint();
  if (n > 100000) return Status::corruption("too many paths");
  for (std::uint64_t i = 0; i < n; ++i) out.paths.push_back(r.str());
  out.stat = decode_stat(r);
  out.exists = r.boolean();
  out.failed_index = static_cast<std::int32_t>(r.i64());
  out.zxid = r.zxid();
  out.is_leader = r.boolean();
  if (!r.ok() || !r.at_end()) return Status::corruption("short response");
  return out;
}

Bytes encode_watch_event(const WatchEventMsg& w) {
  BufWriter out(w.path.size() + 8);
  put_header(out, kWatchTag);
  out.u8(static_cast<std::uint8_t>(w.event));
  out.str(w.path);
  return std::move(out).take();
}

Result<WatchEventMsg> decode_watch_event(std::span<const std::uint8_t> wire) {
  BufReader r(wire);
  if (Status st = check_header(r, kWatchTag, "WatchEvent"); !st.is_ok()) {
    return st;
  }
  WatchEventMsg out;
  const auto ev = r.u8();
  if (ev > static_cast<std::uint8_t>(WatchEvent::kChildrenChanged)) {
    return Status::corruption("bad watch event");
  }
  out.event = static_cast<WatchEvent>(ev);
  out.path = r.str();
  if (!r.ok() || !r.at_end()) return Status::corruption("short WatchEvent");
  return out;
}

bool is_watch_event_frame(std::span<const std::uint8_t> wire) {
  return classify_frame(wire) == FrameType::kWatchEvent;
}

Bytes encode_connect_request(const ConnectRequest& r) {
  BufWriter w(32);
  put_header(w, kConnectTag);
  w.u64(r.session_id);
  w.u32(r.timeout_ms);
  w.u64(r.last_zxid);
  return std::move(w).take();
}

Result<ConnectRequest> decode_connect_request(
    std::span<const std::uint8_t> wire) {
  BufReader r(wire);
  if (Status st = check_header(r, kConnectTag, "ConnectRequest");
      !st.is_ok()) {
    return st;
  }
  ConnectRequest out;
  out.session_id = r.u64();
  out.timeout_ms = r.u32();
  out.last_zxid = r.u64();
  if (!r.ok() || !r.at_end()) return Status::corruption("short ConnectRequest");
  return out;
}

Bytes encode_connect_response(const ConnectResponse& r) {
  BufWriter w(32);
  put_header(w, kConnectAckTag);
  w.u8(static_cast<std::uint8_t>(r.code));
  w.u64(r.session_id);
  w.u32(r.timeout_ms);
  w.boolean(r.reattached);
  w.u64(r.last_zxid);
  return std::move(w).take();
}

Result<ConnectResponse> decode_connect_response(
    std::span<const std::uint8_t> wire) {
  BufReader r(wire);
  if (Status st = check_header(r, kConnectAckTag, "ConnectResponse");
      !st.is_ok()) {
    return st;
  }
  ConnectResponse out;
  out.code = static_cast<Code>(r.u8());
  out.session_id = r.u64();
  out.timeout_ms = r.u32();
  out.reattached = r.boolean();
  out.last_zxid = r.u64();
  if (!r.ok() || !r.at_end()) {
    return Status::corruption("short ConnectResponse");
  }
  return out;
}

Bytes encode_ping_request(const PingRequest& r) {
  BufWriter w(16);
  put_header(w, kPingTag);
  w.u64(r.session_id);
  return std::move(w).take();
}

Result<PingRequest> decode_ping_request(std::span<const std::uint8_t> wire) {
  BufReader r(wire);
  if (Status st = check_header(r, kPingTag, "PingRequest"); !st.is_ok()) {
    return st;
  }
  PingRequest out;
  out.session_id = r.u64();
  if (!r.ok() || !r.at_end()) return Status::corruption("short PingRequest");
  return out;
}

Bytes encode_ping_response(const PingResponse& r) {
  BufWriter w(16);
  put_header(w, kPongTag);
  w.u8(static_cast<std::uint8_t>(r.code));
  w.u64(r.session_id);
  w.boolean(r.is_leader);
  return std::move(w).take();
}

Result<PingResponse> decode_ping_response(std::span<const std::uint8_t> wire) {
  BufReader r(wire);
  if (Status st = check_header(r, kPongTag, "PingResponse"); !st.is_ok()) {
    return st;
  }
  PingResponse out;
  out.code = static_cast<Code>(r.u8());
  out.session_id = r.u64();
  out.is_leader = r.boolean();
  if (!r.ok() || !r.at_end()) return Status::corruption("short PingResponse");
  return out;
}

}  // namespace zab::pb
