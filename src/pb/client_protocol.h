// Wire protocol between external clients and replica servers.
//
// Framing: u32 length prefix, then one encoded request/response. Every
// request carries a client-chosen xid echoed in the response. Writes are
// executed through the replicated pipeline (any server forwards to the
// primary); reads are served from the contacted server's local tree
// (ZooKeeper's consistency: sequential per client, not linearizable).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"
#include "pb/data_tree.h"
#include "pb/ops.h"

namespace zab::pb {

enum class ClientOpKind : std::uint8_t {
  kWrite = 1,        // one or more Ops (multi when >1), atomic
  kGetData = 2,
  kExists = 3,
  kGetChildren = 4,
  kStat = 5,
  kPing = 6,         // liveness + leader hint
  kMntr = 7,         // monitoring dump: response.data carries mntr text
                     // (request.path == "json" selects JSON exposition)
  kTrace = 8,        // trace-ring pull: response.data carries an encoded
                     // TraceSnapshot (common/trace.h); on the leader,
                     // response.paths carries "id:offset_ns" clock-offset
                     // estimates for the cross-node merge
};

struct ClientRequest {
  std::uint64_t xid = 0;
  ClientOpKind kind = ClientOpKind::kPing;
  std::string path;       // reads
  std::vector<Op> ops;    // kWrite
  /// Reads only: also register a one-shot watch (kGetData -> data watch,
  /// kExists -> exists/creation watch, kGetChildren -> child watch). The
  /// server pushes a WatchEventMsg frame on this connection when it fires.
  bool watch = false;
};

/// Server -> client push notification (one-shot watch fired).
struct WatchEventMsg {
  WatchEvent event = WatchEvent::kDataChanged;
  std::string path;
};

struct ClientResponse {
  std::uint64_t xid = 0;
  Code code = Code::kOk;
  Bytes data;                       // kGetData
  std::vector<std::string> paths;   // kGetChildren / created paths of write
  Stat stat;                        // kStat / kExists
  bool exists = false;
  std::int32_t failed_index = -1;   // failing sub-op of a write
  Zxid zxid;                        // commit zxid of a write
  bool is_leader = false;           // kPing: does this server lead?
};

[[nodiscard]] Bytes encode_client_request(const ClientRequest& r);
[[nodiscard]] Result<ClientRequest> decode_client_request(
    std::span<const std::uint8_t> wire);

[[nodiscard]] Bytes encode_client_response(const ClientResponse& r);
[[nodiscard]] Result<ClientResponse> decode_client_response(
    std::span<const std::uint8_t> wire);

[[nodiscard]] Bytes encode_watch_event(const WatchEventMsg& w);
[[nodiscard]] Result<WatchEventMsg> decode_watch_event(
    std::span<const std::uint8_t> wire);
/// True if the frame is a watch-event push (vs. a response).
[[nodiscard]] bool is_watch_event_frame(std::span<const std::uint8_t> wire);

}  // namespace zab::pb
