// Wire protocol between external clients and replica servers.
//
// Framing: u32 length prefix, then one frame. Every frame opens with a
// 3-byte versioned header — magic 0x5A ('Z'), protocol version, frame tag —
// so incompatible clients fail fast with a clear error instead of a silent
// misparse. Version history:
//
//   v1  (retired)  bare tag byte, no session handshake
//   v2  (retired)  versioned header; ConnectRequest/ConnectResponse session
//                  handshake, PingRequest/PingResponse heartbeats, per-op
//                  xid replay after reconnect
//   v3             tiered read consistency: requests carry a consistency
//                  byte + fence zxid, responses carry the answering
//                  replica's delivered zxid, and kSync flushes a barrier
//                  through the broadcast pipeline
//
// Every request carries a client-chosen xid echoed in the response; for
// writes the xid doubles as the session's cxid (assigned once per logical
// op, reused across retries) so a replayed in-flight write is answered from
// the recorded outcome instead of re-executed. Writes are executed through
// the replicated pipeline (any server forwards to the primary); reads are
// served from the contacted server's local tree, fenced per request at the
// client's chosen consistency tier (PROTOCOL.md §15).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"
#include "pb/data_tree.h"
#include "pb/ops.h"

namespace zab::pb {

/// First two bytes of every v2 frame.
inline constexpr std::uint8_t kWireMagic = 0x5A;  // 'Z'
inline constexpr std::uint8_t kWireVersion = 3;

/// How stale an answer a read is willing to accept (PROTOCOL.md §15).
enum class ReadConsistency : std::uint8_t {
  /// Serve from the contacted replica's tree immediately — may predate
  /// writes this same client already saw committed. Explicit opt-in.
  kLocal = 0,
  /// Default. The request carries the highest zxid the client has observed
  /// (`fence_zxid`); the server answers only once its delivered watermark
  /// has reached it, parking the read until the deliver path catches up
  /// (bounded by ZAB_READ_FENCE_TIMEOUT_MS, then kNotReady so the client
  /// rotates). Session reads therefore never travel backwards in zxid
  /// order and always observe the client's own writes.
  kSession = 1,
  /// The server first flushes a sync barrier through the broadcast
  /// pipeline and serves the read at (or after) the barrier's zxid: the
  /// answer reflects every write committed before the read was issued.
  /// Costs one commit round; reads still never fan out to the ensemble.
  kLinearizable = 2,
};

/// What a received frame is, decided from the 3-byte header alone.
enum class FrameType : std::uint8_t {
  kInvalid = 0,
  kRequest,
  kResponse,
  kWatchEvent,
  kConnect,
  kConnectAck,
  kPing,
  kPong,
};
[[nodiscard]] FrameType classify_frame(std::span<const std::uint8_t> wire);

enum class ClientOpKind : std::uint8_t {
  kWrite = 1,        // one or more Ops (multi when >1), atomic
  kGetData = 2,
  kExists = 3,
  kGetChildren = 4,
  kStat = 5,
  kPing = 6,         // liveness + leader hint
  kMntr = 7,         // monitoring dump: response.data carries mntr text
                     // (request.path == "json" selects JSON exposition)
  kTrace = 8,        // trace-ring pull: response.data carries an encoded
                     // TraceSnapshot (common/trace.h); on the leader,
                     // response.paths carries "id:offset_ns" clock-offset
                     // estimates for the cross-node merge
  kCloseSession = 9, // graceful close: the session + its ephemerals die now
                     // instead of waiting out the expiry clock
  kSlowLog = 10,     // slow-op ring pull: response.data carries newest-first
                     // JSONL (one span per line); request.path optionally
                     // carries the entry limit as decimal text
  kSync = 11,        // flush a barrier through the broadcast pipeline;
                     // response.zxid is the barrier's commit zxid — a read
                     // fenced at it observes every write committed before
                     // the sync was issued (ZooKeeper's sync())
  kReconfig = 12,    // membership change: ops[0].type == OpType::kReconfig
                     // and ops[0].data carries a ReconfigRequest; routed to
                     // the primary, response.zxid is the new config's
                     // activation zxid (PROTOCOL.md §16)
  kConfig = 13,      // read the contacted server's active cluster config:
                     // response.data carries it as JSON and response.paths
                     // carries one "id:role:addr" entry per member so
                     // clients can refresh their endpoint list
};

/// Opens (or resumes) a session on a connection; must be the first frame.
struct ConnectRequest {
  std::uint64_t session_id = 0;  // 0 = mint a new session
  std::uint32_t timeout_ms = 0;  // requested lease (the primary clamps it)
  /// Highest packed zxid this client has observed. A server whose local
  /// state is older refuses the attach (kNotReady): re-attaching there
  /// could travel back in time and break replay dedup.
  std::uint64_t last_zxid = 0;
};

struct ConnectResponse {
  Code code = Code::kOk;
  std::uint64_t session_id = 0;  // resolved id (echo or freshly minted)
  std::uint32_t timeout_ms = 0;  // granted lease
  bool reattached = false;       // true: existing session resumed
  std::uint64_t last_zxid = 0;   // server's last delivered zxid (packed)
};

/// Session heartbeat: refreshes the primary's expiry clock for this session
/// without entering the broadcast pipeline.
struct PingRequest {
  std::uint64_t session_id = 0;
};

struct PingResponse {
  Code code = Code::kOk;  // kSessionExpired once the session is gone
  std::uint64_t session_id = 0;
  bool is_leader = false;  // does the contacted server lead?
};

struct ClientRequest {
  std::uint64_t xid = 0;
  ClientOpKind kind = ClientOpKind::kPing;
  std::string path;       // reads
  std::vector<Op> ops;    // kWrite
  /// Reads only: also register a one-shot watch (kGetData -> data watch,
  /// kExists -> exists/creation watch, kGetChildren -> child watch). The
  /// server pushes a WatchEventMsg frame on this connection when it fires.
  /// The watch is registered at the fenced read's apply point, so it cannot
  /// fire for — or swallow — txns ordered before the read's answer.
  bool watch = false;
  /// Reads only: staleness tier (see ReadConsistency). Writes ignore it.
  ReadConsistency consistency = ReadConsistency::kSession;
  /// Reads at kSession: highest packed zxid this client has observed; the
  /// server's delivered watermark must reach it before answering. Unused
  /// (0) for kLocal; kLinearizable derives its fence from the sync barrier
  /// server-side.
  std::uint64_t fence_zxid = 0;
};

/// Server -> client push notification (one-shot watch fired).
struct WatchEventMsg {
  WatchEvent event = WatchEvent::kDataChanged;
  std::string path;
};

struct ClientResponse {
  std::uint64_t xid = 0;
  Code code = Code::kOk;
  Bytes data;                       // kGetData
  std::vector<std::string> paths;   // kGetChildren / created paths of write
  Stat stat;                        // kStat / kExists
  bool exists = false;
  std::int32_t failed_index = -1;   // failing sub-op of a write
  /// Writes: the txn's commit zxid. Reads: the answering replica's
  /// delivered watermark when the read was served — the client ratchets
  /// its observed zxid from it so session reads never travel backwards.
  /// kSync: the barrier's commit zxid.
  Zxid zxid;
  bool is_leader = false;           // kPing: does this server lead?
};

[[nodiscard]] Bytes encode_client_request(const ClientRequest& r);
[[nodiscard]] Result<ClientRequest> decode_client_request(
    std::span<const std::uint8_t> wire);

[[nodiscard]] Bytes encode_client_response(const ClientResponse& r);
[[nodiscard]] Result<ClientResponse> decode_client_response(
    std::span<const std::uint8_t> wire);

[[nodiscard]] Bytes encode_watch_event(const WatchEventMsg& w);
[[nodiscard]] Result<WatchEventMsg> decode_watch_event(
    std::span<const std::uint8_t> wire);
/// True if the frame is a watch-event push (vs. a response).
[[nodiscard]] bool is_watch_event_frame(std::span<const std::uint8_t> wire);

[[nodiscard]] Bytes encode_connect_request(const ConnectRequest& r);
[[nodiscard]] Result<ConnectRequest> decode_connect_request(
    std::span<const std::uint8_t> wire);

[[nodiscard]] Bytes encode_connect_response(const ConnectResponse& r);
[[nodiscard]] Result<ConnectResponse> decode_connect_response(
    std::span<const std::uint8_t> wire);

[[nodiscard]] Bytes encode_ping_request(const PingRequest& r);
[[nodiscard]] Result<PingRequest> decode_ping_request(
    std::span<const std::uint8_t> wire);

[[nodiscard]] Bytes encode_ping_response(const PingResponse& r);
[[nodiscard]] Result<PingResponse> decode_ping_response(
    std::span<const std::uint8_t> wire);

}  // namespace zab::pb
