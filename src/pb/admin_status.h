// Admin-plane snapshot collection for a running replica.
//
// net::AdminServer is deliberately protocol-blind: it speaks HTTP and asks a
// Collector for data. This module is the other half — it knows the ZabNode,
// the session layer, and the storage backend, and renders the endpoint
// bodies ON the node's event loop (histograms, readiness, and the trace
// ring are loop-owned). Wiring:
//
//   AdminServer admin(cfg, make_admin_collector(env, node, &tree, storage));
//
// Every helper here must run on the node's loop thread; only
// make_admin_collector (which posts) is thread-safe.
#pragma once

#include <string>

#include "net/admin_server.h"
#include "net/runtime_env.h"
#include "storage/zab_storage.h"
#include "zab/zab_node.h"

namespace zab::pb {

class ReplicatedTree;

/// /status body: role, epoch, zxid watermarks, peers, sessions, storage.
/// `tree` may be null (no client layer above the node).
[[nodiscard]] std::string admin_status_json(ZabNode& node,
                                            ReplicatedTree* tree,
                                            storage::ZabStorage& storage);

/// The active replicated cluster config as a JSON object (version,
/// config_zxid, voters, observers, addrs). Embedded in /status as
/// "ensemble", served whole at /config, and returned by kConfig.
[[nodiscard]] std::string cluster_config_json(const ClusterConfig& c);

/// Trace ring as JSONL, one event per line, oldest first. Each line carries
/// the packed zxid as `"packed":N,` and the recorder's epoch as `"epoch":E,`
/// — /tracez?zxid=N and /tracez?epoch=E filter on them.
[[nodiscard]] std::string admin_trace_jsonl(ZabNode& node);

/// Everything the admin server serves, in one pass. Also refreshes
/// zab.server.uptime_s so scrapes see a live value.
[[nodiscard]] net::AdminSnapshot collect_admin_snapshot(
    ZabNode& node, ReplicatedTree* tree, storage::ZabStorage& storage);

/// AdminServer::Collector bound to a RuntimeEnv-driven replica: posts the
/// collection onto the node's loop. The referenced objects must outlive the
/// AdminServer (stop the server first on teardown). If the loop has stopped,
/// the posted task is dropped and the server serves its stale cache — which
/// is exactly the degraded behavior /readyz reports.
[[nodiscard]] net::AdminServer::Collector make_admin_collector(
    net::RuntimeEnv& env, ZabNode& node, ReplicatedTree* tree,
    storage::ZabStorage& storage);

}  // namespace zab::pb
