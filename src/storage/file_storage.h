// File-backed ZabStorage (ZooKeeper-style on-disk layout).
//
// Directory layout:
//   epoch                 acceptedEpoch/currentEpoch, CRC'd, atomic rename
//   log.<zxid16hex>       log segment starting at that (packed) zxid
//   snap.<zxid16hex>      application snapshot covering up to that zxid
//
// Log record format (little-endian):
//   u32 payload_len | u32 masked_crc32c(payload) | payload
//   payload = u64 packed zxid | varint data_len | data
// Recovery scans segments in order and treats a short or CRC-failing record
// at the tail of the newest segment as a torn write (truncated there);
// corruption anywhere else is reported as an error.
//
// The full set of logged entries is mirrored in memory (ZooKeeper similarly
// keeps the committed log in memory); the disk is the durable record used to
// rebuild on open(). Two durability pipelines exist:
//
//   kSync (default)        append() writes and (with fsync enabled) forces
//                          the record before returning; on_durable fires
//                          inside append(). Deterministic — the simulator
//                          and most tests rely on this.
//   kGroupCommit           append() encodes the record, queues it, and
//                          returns. A dedicated log-sync thread drains the
//                          queue: one vectored write + ONE fsync per batch
//                          (ZooKeeper's group commit, paper §6), then hands
//                          the whole batch's on_durable callbacks back to
//                          the owner via the completion poster. Callbacks
//                          still fire in append order and only after the
//                          covering force. The in-memory mirror is updated
//                          at append() time, so last_zxid()/entries_in()
//                          already include the queued (pending) tail;
//                          truncate_after()/install_snapshot() drain the
//                          queue before touching files.
#pragma once

#include <condition_variable>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "storage/fs_util.h"
#include "storage/zab_storage.h"

namespace zab::storage {

struct FileStorageOptions {
  std::string dir;
  /// Force appends to media before reporting durability. Disable only for
  /// benchmarks/examples where the OS page cache is an acceptable risk.
  bool fsync = true;
  /// Durability pipeline (see the header comment). Env override:
  /// ZAB_GROUP_COMMIT=1 selects kGroupCommit, =0 forces kSync.
  enum class SyncMode { kSync, kGroupCommit };
  SyncMode sync_mode = SyncMode::kSync;
  /// Group commit: cap on records covered by one force.
  /// Env override: ZAB_GROUP_COMMIT_MAX_RECORDS.
  std::size_t max_batch_records = 512;
  /// Group commit: cap on bytes covered by one force.
  /// Env override: ZAB_GROUP_COMMIT_MAX_BYTES.
  std::size_t max_batch_bytes = 1u << 20;
  /// Bench/test knob: when nonzero, each log force sleeps this long instead
  /// of calling fsync — a device with a fixed force latency. Lets the fsync
  /// policy bench compare force-each and group commit at identical simulated
  /// force cost on any filesystem.
  std::uint64_t simulated_force_ns = 0;
  /// Roll to a new segment when the active one exceeds this many bytes.
  std::size_t segment_bytes = 4u << 20;
  /// Optional shared registry; when set, appends/snapshots/truncates are
  /// counted under storage.* and append latency feeds storage.append_ns.
  /// Must outlive the FileStorage. Histograms follow the registry's
  /// owning-thread rule: they are recorded on the owner's thread (directly
  /// in kSync mode, via the completion poster in kGroupCommit mode).
  MetricsRegistry* metrics = nullptr;
  /// An fsync slower than this counts as a slow disk op: `zab.stall.fsync`
  /// is bumped and a rate-limited warning names the segment. 0 disables.
  /// Env override: ZAB_SLOW_FSYNC_MS (applied in open()).
  std::uint64_t slow_fsync_ns = 100'000'000;  // 100 ms
};

class FileStorage final : public ZabStorage {
 public:
  /// How group-commit completions reach the owner's event context: the
  /// poster is invoked (from the log-sync thread) with a dispatch closure
  /// that must run on the owner's loop, e.g. RuntimeEnv::post. Without a
  /// poster, completions are dispatched directly on the log-sync thread
  /// (callbacks must then be thread-safe — fine for benches, wrong for a
  /// ZabNode). Unused in kSync mode.
  using CompletionPoster = std::function<void(std::function<void()>)>;

  /// Opens (creating the directory if needed) and recovers existing state.
  static Result<std::unique_ptr<FileStorage>> open(FileStorageOptions opts);
  ~FileStorage() override;

  FileStorage(const FileStorage&) = delete;
  FileStorage& operator=(const FileStorage&) = delete;

  /// Wire the completion poster (kGroupCommit mode). Call before the first
  /// append whose callback must run on the owner's loop; thread-safe.
  void set_completion_poster(CompletionPoster poster);

  /// Block until every record queued so far is on stable storage and its
  /// durability callback has been dispatched (in append order, on the
  /// calling thread for callbacks not yet handed to the poster). No-op in
  /// kSync mode. Call from the owner's event context.
  void flush();

  // --- ZabStorage ------------------------------------------------------------
  [[nodiscard]] Epoch accepted_epoch() const override { return accepted_epoch_; }
  [[nodiscard]] Epoch current_epoch() const override { return current_epoch_; }
  Status set_accepted_epoch(Epoch e) override;
  Status set_current_epoch(Epoch e) override;

  void append(const Txn& txn, std::function<void()> on_durable) override;
  Status truncate_after(Zxid last_keep) override;
  [[nodiscard]] Zxid last_zxid() const override;
  [[nodiscard]] Zxid latest_at_or_below(Zxid z) const override;
  [[nodiscard]] bool covers(Zxid z) const override;
  [[nodiscard]] std::vector<Txn> entries_in(Zxid after,
                                            Zxid upto) const override;
  [[nodiscard]] Zxid first_logged() const override;

  Status save_snapshot(const Snapshot& snap) override;
  Status install_snapshot(const Snapshot& snap) override;
  [[nodiscard]] std::optional<Snapshot> snapshot() const override {
    return snap_;
  }
  void purge_log(std::size_t keep) override;

  /// Status of the last append's write path (append() itself is void to
  /// match the async interface; errors surface here and in logs). In
  /// kGroupCommit mode a sync-thread IO error is reported here on the next
  /// call from the owner thread.
  [[nodiscard]] Status last_io_status() const;

  /// Owner-thread only, like the mutators: reads the in-memory segment
  /// mirror (which includes the queued-but-not-yet-durable tail).
  [[nodiscard]] StorageInfo info() const override;

 private:
  explicit FileStorage(FileStorageOptions opts) : opts_(std::move(opts)) {
    if (opts_.metrics) {
      c_append_ops_ = &opts_.metrics->counter("storage.append_ops");
      c_append_bytes_ = &opts_.metrics->counter("storage.append_bytes");
      c_fsyncs_ = &opts_.metrics->counter("storage.fsyncs");
      c_snapshots_ = &opts_.metrics->counter("storage.snapshots_saved");
      c_truncates_ = &opts_.metrics->counter("storage.truncates");
      h_append_ns_ = &opts_.metrics->histogram("storage.append_ns");
      h_fsync_ns_ = &opts_.metrics->histogram("storage.fsync_ns");
      h_batch_records_ = &opts_.metrics->histogram("storage.sync_batch_records");
      h_queue_depth_ = &opts_.metrics->histogram("storage.sync_queue_depth");
      c_slow_fsync_ = &opts_.metrics->counter("zab.stall.fsync");
    }
  }

  struct Segment {
    Zxid start;  // zxid of first record
    std::string path;
    std::uint64_t bytes = 0;  // includes bytes still queued for write
    std::vector<Txn> entries;  // in-memory mirror, zxid-ordered; includes
                               // the not-yet-durable pending tail
  };

  /// One queued unit of log-sync work: either an encoded record with its
  /// durability callback, or a segment-roll marker (open `path` fresh).
  struct QueuedWrite {
    Bytes record;              // framed [len|crc|payload]; empty for rolls
    std::function<void()> cb;  // may be null
    bool roll = false;
    std::string path;  // roll only
  };

  /// One durable batch awaiting dispatch on the owner's context. Kept in a
  /// FIFO shared with the posted dispatch closures so completions run in
  /// append order no matter who dispatches (poster task or flush()).
  struct BatchDone {
    std::vector<std::function<void()>> cbs;
    std::uint64_t records = 0;
    std::uint64_t fsync_ns = 0;
    bool forced = false;           // batch ended with a log force
    Histogram* h_batch = nullptr;  // loop-owned; recorded at dispatch
    Histogram* h_fsync = nullptr;
  };
  /// Shared with posted closures via shared_ptr, so a dispatch task that
  /// outlives the FileStorage (loop teardown) stays memory-safe.
  struct CompletionQueue {
    std::mutex mu;
    std::deque<BatchDone> ready;
    std::mutex dispatch_mu;  // serializes dispatchers, preserving order
    static void dispatch(const std::shared_ptr<CompletionQueue>& q);
  };

  Status recover();
  Status recover_segment(Segment& seg, bool is_last);
  Status load_epoch_file();
  Status store_epoch_file();
  Status load_latest_snapshot();
  Status start_segment(Zxid start);
  /// Append one framed record ([len|crc|payload], encoded exactly once with
  /// the header patched in) to `out`.
  static void encode_record(BufWriter& out, const Txn& txn);
  Status write_record(const Txn& txn);
  Status rewrite_segment(Segment& seg);
  /// One log force: fsync(fd), or the configured simulated sleep.
  Status force_fd(int fd, std::uint64_t* took_ns);
  void note_slow_fsync(std::uint64_t t0, std::uint64_t took,
                       const std::string& path);
  void start_sync_thread();
  void sync_loop();
  /// Stop the sync thread after writing out everything queued. With
  /// `dispatch`, remaining completions run inline; without (destructor),
  /// they are dropped — their targets may already be gone.
  void quiesce(bool dispatch);
  [[nodiscard]] std::string segment_path(Zxid start) const;
  [[nodiscard]] std::string snap_path(Zxid z) const;
  [[nodiscard]] std::size_t total_entries() const;
  [[nodiscard]] bool group_commit() const {
    return opts_.sync_mode == FileStorageOptions::SyncMode::kGroupCommit;
  }

  FileStorageOptions opts_;
  std::vector<Segment> segments_;
  Fd active_fd_;  // kSync: owner thread; kGroupCommit: log-sync thread
                  // (handoffs synchronized through queue_mu_)
  std::optional<Snapshot> snap_;
  Epoch accepted_epoch_ = kNoEpoch;
  Epoch current_epoch_ = kNoEpoch;
  Status last_io_status_;  // kSync-mode errors (owner thread only)
  BufWriter scratch_;      // kSync-mode record scratch, reused across appends

  // --- Group-commit pipeline (kGroupCommit mode only) ---
  mutable std::mutex queue_mu_;  // guards this block + active_fd_ handoff
  std::condition_variable queue_cv_;  // work available / stop
  std::condition_variable drain_cv_;  // queue empty and no batch in flight
  std::deque<QueuedWrite> sync_queue_;
  bool batch_in_flight_ = false;
  bool stop_sync_ = false;
  Status async_io_status_;  // first sync-thread IO error, sticky
  CompletionPoster poster_;
  std::string sync_path_;  // active segment path, for slow-fsync warnings
  std::shared_ptr<CompletionQueue> completions_ =
      std::make_shared<CompletionQueue>();
  std::thread sync_thread_;

  AtomicCounter* c_append_ops_ = nullptr;
  AtomicCounter* c_append_bytes_ = nullptr;
  AtomicCounter* c_fsyncs_ = nullptr;
  AtomicCounter* c_snapshots_ = nullptr;
  AtomicCounter* c_truncates_ = nullptr;
  AtomicCounter* c_slow_fsync_ = nullptr;
  Histogram* h_append_ns_ = nullptr;
  Histogram* h_fsync_ns_ = nullptr;
  Histogram* h_batch_records_ = nullptr;
  Histogram* h_queue_depth_ = nullptr;
  std::uint64_t last_slow_fsync_log_ns_ = 0;  // rate limit: 1 warn/s (atomic
                                              // enough: single writer thread
                                              // per mode)
};

}  // namespace zab::storage
