// File-backed ZabStorage (ZooKeeper-style on-disk layout).
//
// Directory layout:
//   epoch                 acceptedEpoch/currentEpoch, CRC'd, atomic rename
//   log.<zxid16hex>       log segment starting at that (packed) zxid
//   snap.<zxid16hex>      application snapshot covering up to that zxid
//
// Log record format (little-endian):
//   u32 payload_len | u32 masked_crc32c(payload) | payload
//   payload = u64 packed zxid | varint data_len | data
// Recovery scans segments in order and treats a short or CRC-failing record
// at the tail of the newest segment as a torn write (truncated there);
// corruption anywhere else is reported as an error.
//
// The full set of logged entries is mirrored in memory (ZooKeeper similarly
// keeps the committed log in memory); the disk is the durable record used to
// rebuild on open(). Appends write through to the active segment and, with
// fsync enabled, force it before the durability callback fires.
#pragma once

#include <cstdio>
#include <deque>
#include <memory>
#include <string>

#include "common/metrics_registry.h"
#include "storage/fs_util.h"
#include "storage/zab_storage.h"

namespace zab::storage {

struct FileStorageOptions {
  std::string dir;
  /// Force every append to media before reporting durability. Disable only
  /// for benchmarks/examples where the OS page cache is an acceptable risk.
  bool fsync = true;
  /// Roll to a new segment when the active one exceeds this many bytes.
  std::size_t segment_bytes = 4u << 20;
  /// Optional shared registry; when set, appends/snapshots/truncates are
  /// counted under storage.* and append latency feeds storage.append_ns.
  /// Must outlive the FileStorage. Storage runs on the owner's loop thread,
  /// so the histogram follows the registry's owning-thread rule.
  MetricsRegistry* metrics = nullptr;
  /// An fsync slower than this counts as a slow disk op: `zab.stall.fsync`
  /// is bumped and a rate-limited warning names the segment. 0 disables.
  /// Env override: ZAB_SLOW_FSYNC_MS (applied in open()).
  std::uint64_t slow_fsync_ns = 100'000'000;  // 100 ms
};

class FileStorage final : public ZabStorage {
 public:
  /// Opens (creating the directory if needed) and recovers existing state.
  static Result<std::unique_ptr<FileStorage>> open(FileStorageOptions opts);
  ~FileStorage() override;

  FileStorage(const FileStorage&) = delete;
  FileStorage& operator=(const FileStorage&) = delete;

  // --- ZabStorage ------------------------------------------------------------
  [[nodiscard]] Epoch accepted_epoch() const override { return accepted_epoch_; }
  [[nodiscard]] Epoch current_epoch() const override { return current_epoch_; }
  Status set_accepted_epoch(Epoch e) override;
  Status set_current_epoch(Epoch e) override;

  void append(const Txn& txn, std::function<void()> on_durable) override;
  Status truncate_after(Zxid last_keep) override;
  [[nodiscard]] Zxid last_zxid() const override;
  [[nodiscard]] Zxid latest_at_or_below(Zxid z) const override;
  [[nodiscard]] bool covers(Zxid z) const override;
  [[nodiscard]] std::vector<Txn> entries_in(Zxid after,
                                            Zxid upto) const override;
  [[nodiscard]] Zxid first_logged() const override;

  Status save_snapshot(const Snapshot& snap) override;
  Status install_snapshot(const Snapshot& snap) override;
  [[nodiscard]] std::optional<Snapshot> snapshot() const override {
    return snap_;
  }
  void purge_log(std::size_t keep) override;

  /// Status of the last append's write path (append() itself is void to
  /// match the async interface; errors surface here and in logs).
  [[nodiscard]] Status last_io_status() const { return last_io_status_; }

 private:
  explicit FileStorage(FileStorageOptions opts) : opts_(std::move(opts)) {
    if (opts_.metrics) {
      c_append_ops_ = &opts_.metrics->counter("storage.append_ops");
      c_append_bytes_ = &opts_.metrics->counter("storage.append_bytes");
      c_snapshots_ = &opts_.metrics->counter("storage.snapshots_saved");
      c_truncates_ = &opts_.metrics->counter("storage.truncates");
      h_append_ns_ = &opts_.metrics->histogram("storage.append_ns");
      h_fsync_ns_ = &opts_.metrics->histogram("storage.fsync_ns");
      c_slow_fsync_ = &opts_.metrics->counter("zab.stall.fsync");
    }
  }

  struct Segment {
    Zxid start;  // zxid of first record
    std::string path;
    std::uint64_t bytes = 0;
    std::vector<Txn> entries;  // in-memory mirror, zxid-ordered
  };

  Status recover();
  Status recover_segment(Segment& seg, bool is_last);
  Status load_epoch_file();
  Status store_epoch_file();
  Status load_latest_snapshot();
  Status start_segment(Zxid start);
  Status write_record(const Txn& txn);
  Status rewrite_segment(Segment& seg);
  [[nodiscard]] std::string segment_path(Zxid start) const;
  [[nodiscard]] std::string snap_path(Zxid z) const;
  [[nodiscard]] std::size_t total_entries() const;

  FileStorageOptions opts_;
  std::vector<Segment> segments_;
  Fd active_fd_;
  std::optional<Snapshot> snap_;
  Epoch accepted_epoch_ = kNoEpoch;
  Epoch current_epoch_ = kNoEpoch;
  Status last_io_status_;
  AtomicCounter* c_append_ops_ = nullptr;
  AtomicCounter* c_append_bytes_ = nullptr;
  AtomicCounter* c_snapshots_ = nullptr;
  AtomicCounter* c_truncates_ = nullptr;
  AtomicCounter* c_slow_fsync_ = nullptr;
  Histogram* h_append_ns_ = nullptr;
  Histogram* h_fsync_ns_ = nullptr;
  std::uint64_t last_slow_fsync_log_ns_ = 0;  // rate limit: 1 warn/s
};

}  // namespace zab::storage
