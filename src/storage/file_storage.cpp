#include "storage/file_storage.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/crc32c.h"
#include "common/logging.h"

namespace zab::storage {

namespace {

std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr std::uint32_t kEpochMagic = 0x4f50455au;  // "ZEPO"
constexpr std::uint32_t kSnapMagic = 0x504e535au;   // "ZSNP"
constexpr std::uint32_t kFormatVersion = 1;

std::string zxid_hex(Zxid z) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(z.packed()));
  return buf;
}

Status write_all(int fd, std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::io_error(std::string("write: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

}  // namespace

std::string FileStorage::segment_path(Zxid start) const {
  return opts_.dir + "/log." + zxid_hex(start);
}
std::string FileStorage::snap_path(Zxid z) const {
  return opts_.dir + "/snap." + zxid_hex(z);
}

Result<std::unique_ptr<FileStorage>> FileStorage::open(
    FileStorageOptions opts) {
  if (const char* ms = std::getenv("ZAB_SLOW_FSYNC_MS")) {
    opts.slow_fsync_ns = std::strtoull(ms, nullptr, 10) * 1'000'000ull;
  }
  ZAB_RETURN_IF_ERROR(make_dirs(opts.dir));
  std::unique_ptr<FileStorage> fs(new FileStorage(std::move(opts)));
  ZAB_RETURN_IF_ERROR(fs->recover());
  return fs;
}

FileStorage::~FileStorage() = default;

// --- Recovery ----------------------------------------------------------------

Status FileStorage::recover() {
  ZAB_RETURN_IF_ERROR(load_epoch_file());
  ZAB_RETURN_IF_ERROR(load_latest_snapshot());

  auto names = list_dir(opts_.dir);
  if (!names.is_ok()) return names.status();
  for (const auto& name : names.value()) {
    if (name.rfind("log.", 0) != 0) continue;
    const std::string hex = name.substr(4);
    if (hex.size() != 16) continue;
    Segment seg;
    seg.start = Zxid::from_packed(std::strtoull(hex.c_str(), nullptr, 16));
    seg.path = opts_.dir + "/" + name;
    segments_.push_back(std::move(seg));
  }
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) { return a.start < b.start; });

  for (std::size_t i = 0; i < segments_.size(); ++i) {
    ZAB_RETURN_IF_ERROR(
        recover_segment(segments_[i], i + 1 == segments_.size()));
  }
  // Drop segments that ended up empty (e.g. fully torn).
  std::erase_if(segments_, [this](const Segment& s) {
    if (!s.entries.empty()) return false;
    (void)remove_file(s.path);
    return true;
  });

  // Reopen the last segment for appending.
  if (!segments_.empty()) {
    active_fd_ = Fd(::open(segments_.back().path.c_str(),
                           O_WRONLY | O_APPEND | O_CLOEXEC));
    if (!active_fd_.valid()) {
      return Status::io_error("reopen active segment " + segments_.back().path);
    }
  }
  return Status::ok();
}

Status FileStorage::recover_segment(Segment& seg, bool is_last) {
  auto data_res = read_file(seg.path);
  if (!data_res.is_ok()) return data_res.status();
  const Bytes& data = data_res.value();

  std::size_t pos = 0;
  std::uint64_t valid_bytes = 0;
  while (pos + 8 <= data.size()) {
    std::uint32_t len = 0;
    std::uint32_t masked = 0;
    std::memcpy(&len, data.data() + pos, 4);
    std::memcpy(&masked, data.data() + pos + 4, 4);
    if (pos + 8 + len > data.size()) break;  // short record: torn tail
    const std::span<const std::uint8_t> payload(data.data() + pos + 8, len);
    if (crc32c_mask(crc32c(payload)) != masked) break;  // corrupt record
    BufReader r(payload);
    Txn t = decode_txn(r);
    if (!r.ok() || !r.at_end()) break;
    seg.entries.push_back(std::move(t));
    pos += 8 + len;
    valid_bytes = pos;
  }

  if (valid_bytes != data.size()) {
    if (!is_last) {
      return Status::corruption("corrupt record in non-final segment " +
                                seg.path);
    }
    // Torn write at the tail of the newest segment: expected after a crash.
    ZAB_WARN() << "truncating torn tail of " << seg.path << " at "
               << valid_bytes << "/" << data.size();
    ZAB_RETURN_IF_ERROR(truncate_file(seg.path, valid_bytes));
  }
  seg.bytes = valid_bytes;
  return Status::ok();
}

Status FileStorage::load_epoch_file() {
  const std::string path = opts_.dir + "/epoch";
  if (!file_exists(path)) return Status::ok();
  auto data = read_file(path);
  if (!data.is_ok()) return data.status();
  BufReader r(data.value());
  const std::uint32_t magic = r.u32();
  const std::uint32_t version = r.u32();
  const Epoch accepted = r.u32();
  const Epoch current = r.u32();
  const std::uint32_t crc = r.u32();
  if (!r.ok() || magic != kEpochMagic || version != kFormatVersion) {
    return Status::corruption("bad epoch file header");
  }
  BufWriter w;
  w.u32(magic);
  w.u32(version);
  w.u32(accepted);
  w.u32(current);
  if (crc32c(w.data()) != crc) return Status::corruption("epoch file CRC");
  accepted_epoch_ = accepted;
  current_epoch_ = current;
  return Status::ok();
}

Status FileStorage::store_epoch_file() {
  BufWriter w;
  w.u32(kEpochMagic);
  w.u32(kFormatVersion);
  w.u32(accepted_epoch_);
  w.u32(current_epoch_);
  const std::uint32_t crc = crc32c(w.data());
  w.u32(crc);
  return atomic_write_file(opts_.dir + "/epoch", w.data(), opts_.fsync);
}

Status FileStorage::load_latest_snapshot() {
  auto names = list_dir(opts_.dir);
  if (!names.is_ok()) return names.status();
  Zxid best = Zxid::zero();
  std::string best_path;
  for (const auto& name : names.value()) {
    if (name.rfind("snap.", 0) != 0) continue;
    const std::string hex = name.substr(5);
    if (hex.size() != 16) continue;
    const Zxid z = Zxid::from_packed(std::strtoull(hex.c_str(), nullptr, 16));
    if (best_path.empty() || z > best) {
      best = z;
      best_path = opts_.dir + "/" + name;
    }
  }
  if (best_path.empty()) return Status::ok();
  auto data = read_file(best_path);
  if (!data.is_ok()) return data.status();
  BufReader r(data.value());
  const std::uint32_t magic = r.u32();
  const std::uint32_t version = r.u32();
  const Zxid z = r.zxid();
  Bytes state = r.bytes();
  const std::uint32_t crc = r.u32();
  if (!r.ok() || magic != kSnapMagic || version != kFormatVersion) {
    return Status::corruption("bad snapshot header " + best_path);
  }
  BufWriter w;
  w.u32(magic);
  w.u32(version);
  w.zxid(z);
  w.bytes(state);
  if (crc32c(w.data()) != crc) {
    // A torn snapshot is ignored; an older one (or none) still gives a
    // correct, if slower, recovery.
    ZAB_WARN() << "ignoring snapshot with bad CRC: " << best_path;
    return Status::ok();
  }
  snap_ = Snapshot{z, std::move(state)};
  return Status::ok();
}

// --- Epochs --------------------------------------------------------------------

Status FileStorage::set_accepted_epoch(Epoch e) {
  accepted_epoch_ = e;
  return store_epoch_file();
}
Status FileStorage::set_current_epoch(Epoch e) {
  current_epoch_ = e;
  return store_epoch_file();
}

// --- Log write path --------------------------------------------------------------

Status FileStorage::start_segment(Zxid start) {
  Segment seg;
  seg.start = start;
  seg.path = segment_path(start);
  active_fd_ = Fd(::open(seg.path.c_str(),
                         O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
  if (!active_fd_.valid()) {
    return Status::io_error("create segment " + seg.path);
  }
  segments_.push_back(std::move(seg));
  return Status::ok();
}

Status FileStorage::write_record(const Txn& txn) {
  BufWriter payload;
  encode_txn(payload, txn);
  BufWriter rec(payload.size() + 8);
  rec.u32(static_cast<std::uint32_t>(payload.size()));
  rec.u32(crc32c_mask(crc32c(payload.data())));
  rec.raw(payload.data());
  ZAB_RETURN_IF_ERROR(write_all(active_fd_.get(), rec.data()));
  if (opts_.fsync) {
    const std::uint64_t t0 = mono_ns();
    if (::fsync(active_fd_.get()) != 0) {
      return Status::io_error("fsync segment");
    }
    const std::uint64_t took = mono_ns() - t0;
    if (h_fsync_ns_) h_fsync_ns_->record(took);
    if (opts_.slow_fsync_ns != 0 && took >= opts_.slow_fsync_ns) {
      if (c_slow_fsync_) c_slow_fsync_->add();
      if (t0 - last_slow_fsync_log_ns_ >= 1'000'000'000ull) {
        last_slow_fsync_log_ns_ = t0;
        ZAB_WARN() << "slow fsync: " << took / 1'000'000 << " ms on "
                   << segments_.back().path << " (threshold "
                   << opts_.slow_fsync_ns / 1'000'000 << " ms)";
      }
    }
  }
  segments_.back().bytes += rec.size();
  if (c_append_bytes_) c_append_bytes_->add(rec.size());
  return Status::ok();
}

void FileStorage::append(const Txn& txn, std::function<void()> on_durable) {
  const std::uint64_t t0 = h_append_ns_ ? mono_ns() : 0;
  Status st;
  if (segments_.empty() || segments_.back().bytes >= opts_.segment_bytes) {
    st = start_segment(txn.zxid);
  }
  if (st.is_ok()) st = write_record(txn);
  if (st.is_ok()) {
    segments_.back().entries.push_back(txn);
    last_io_status_ = Status::ok();
    if (c_append_ops_) c_append_ops_->add();
    if (h_append_ns_) h_append_ns_->record(mono_ns() - t0);
    if (on_durable) on_durable();
  } else {
    // The durability callback never fires; the caller's ACK is withheld,
    // which is the correct protocol-level response to a dead disk.
    last_io_status_ = st;
    ZAB_ERROR() << "append failed: " << st.to_string();
  }
}

Status FileStorage::rewrite_segment(Segment& seg) {
  BufWriter out;
  for (const Txn& t : seg.entries) {
    BufWriter payload;
    encode_txn(payload, t);
    out.u32(static_cast<std::uint32_t>(payload.size()));
    out.u32(crc32c_mask(crc32c(payload.data())));
    out.raw(payload.data());
  }
  ZAB_RETURN_IF_ERROR(atomic_write_file(seg.path, out.data(), opts_.fsync));
  seg.bytes = out.size();
  return Status::ok();
}

Status FileStorage::truncate_after(Zxid last_keep) {
  if (c_truncates_) c_truncates_->add();
  active_fd_.reset();
  while (!segments_.empty() && segments_.back().start > last_keep) {
    ZAB_RETURN_IF_ERROR(remove_file(segments_.back().path));
    segments_.pop_back();
  }
  if (!segments_.empty()) {
    Segment& seg = segments_.back();
    const std::size_t before = seg.entries.size();
    while (!seg.entries.empty() && seg.entries.back().zxid > last_keep) {
      seg.entries.pop_back();
    }
    if (seg.entries.empty()) {
      ZAB_RETURN_IF_ERROR(remove_file(seg.path));
      segments_.pop_back();
    } else if (seg.entries.size() != before) {
      ZAB_RETURN_IF_ERROR(rewrite_segment(seg));
    }
  }
  if (!segments_.empty()) {
    active_fd_ = Fd(::open(segments_.back().path.c_str(),
                           O_WRONLY | O_APPEND | O_CLOEXEC));
    if (!active_fd_.valid()) return Status::io_error("reopen after truncate");
  }
  return Status::ok();
}

// --- Log read path ----------------------------------------------------------------

Zxid FileStorage::last_zxid() const {
  if (!segments_.empty() && !segments_.back().entries.empty()) {
    return segments_.back().entries.back().zxid;
  }
  if (snap_) return snap_->last_included;
  return Zxid::zero();
}

Zxid FileStorage::latest_at_or_below(Zxid z) const {
  Zxid best = Zxid::zero();
  if (snap_ && snap_->last_included <= z) best = snap_->last_included;
  for (const auto& seg : segments_) {
    if (seg.start > z) break;
    for (const auto& t : seg.entries) {
      if (t.zxid > z) break;
      best = std::max(best, t.zxid);
    }
  }
  return best;
}

bool FileStorage::covers(Zxid z) const {
  if (z == Zxid::zero()) return true;
  if (snap_ && snap_->last_included == z) return true;
  return latest_at_or_below(z) == z && z != Zxid::zero();
}

std::vector<Txn> FileStorage::entries_in(Zxid after, Zxid upto) const {
  std::vector<Txn> out;
  for (const auto& seg : segments_) {
    for (const auto& t : seg.entries) {
      if (t.zxid > after && t.zxid <= upto) out.push_back(t);
    }
  }
  return out;
}

Zxid FileStorage::first_logged() const {
  for (const auto& seg : segments_) {
    if (!seg.entries.empty()) return seg.entries.front().zxid;
  }
  return Zxid::max();
}

std::size_t FileStorage::total_entries() const {
  std::size_t n = 0;
  for (const auto& seg : segments_) n += seg.entries.size();
  return n;
}

// --- Snapshots ------------------------------------------------------------------------

Status FileStorage::save_snapshot(const Snapshot& snap) {
  BufWriter w;
  w.u32(kSnapMagic);
  w.u32(kFormatVersion);
  w.zxid(snap.last_included);
  w.bytes(snap.state);
  w.u32(crc32c(w.data()));
  ZAB_RETURN_IF_ERROR(
      atomic_write_file(snap_path(snap.last_included), w.data(), opts_.fsync));
  snap_ = snap;
  if (c_snapshots_) c_snapshots_->add();
  return Status::ok();
}

Status FileStorage::install_snapshot(const Snapshot& snap) {
  ZAB_RETURN_IF_ERROR(save_snapshot(snap));
  // The local log is obsolete: a snapshot install replaces history.
  active_fd_.reset();
  for (auto& seg : segments_) {
    ZAB_RETURN_IF_ERROR(remove_file(seg.path));
  }
  segments_.clear();
  return Status::ok();
}

void FileStorage::purge_log(std::size_t keep) {
  if (!snap_) return;
  while (segments_.size() > 1) {
    const Segment& first = segments_.front();
    if (first.entries.empty() ||
        first.entries.back().zxid > snap_->last_included) {
      break;
    }
    if (total_entries() - first.entries.size() < keep) break;
    (void)remove_file(first.path);
    segments_.erase(segments_.begin());
  }
}

}  // namespace zab::storage
