#include "storage/file_storage.h"

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/crc32c.h"
#include "common/logging.h"

namespace zab::storage {

namespace {

std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr std::uint32_t kEpochMagic = 0x4f50455au;  // "ZEPO"
constexpr std::uint32_t kSnapMagic = 0x504e535au;   // "ZSNP"
constexpr std::uint32_t kFormatVersion = 1;

std::string zxid_hex(Zxid z) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(z.packed()));
  return buf;
}

Status write_all(int fd, std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::io_error(std::string("write: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

/// Vectored write of the whole iovec array, resuming after partial writes.
/// Mutates `iov` in place (the consumed prefix is advanced).
Status writev_all(int fd, std::vector<::iovec>& iov) {
  std::size_t idx = 0;
  while (idx < iov.size()) {
    const auto cnt =
        static_cast<int>(std::min<std::size_t>(iov.size() - idx, 512));
    const ssize_t n = ::writev(fd, iov.data() + idx, cnt);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::io_error(std::string("writev: ") + std::strerror(errno));
    }
    auto rem = static_cast<std::size_t>(n);
    while (rem > 0 && idx < iov.size()) {
      if (rem >= iov[idx].iov_len) {
        rem -= iov[idx].iov_len;
        ++idx;
      } else {
        iov[idx].iov_base = static_cast<std::uint8_t*>(iov[idx].iov_base) + rem;
        iov[idx].iov_len -= rem;
        rem = 0;
      }
    }
  }
  return Status::ok();
}

}  // namespace

std::string FileStorage::segment_path(Zxid start) const {
  return opts_.dir + "/log." + zxid_hex(start);
}
std::string FileStorage::snap_path(Zxid z) const {
  return opts_.dir + "/snap." + zxid_hex(z);
}

Result<std::unique_ptr<FileStorage>> FileStorage::open(
    FileStorageOptions opts) {
  if (const char* ms = std::getenv("ZAB_SLOW_FSYNC_MS")) {
    opts.slow_fsync_ns = std::strtoull(ms, nullptr, 10) * 1'000'000ull;
  }
  if (const char* gc = std::getenv("ZAB_GROUP_COMMIT")) {
    opts.sync_mode = std::strtoul(gc, nullptr, 10) != 0
                         ? FileStorageOptions::SyncMode::kGroupCommit
                         : FileStorageOptions::SyncMode::kSync;
  }
  if (const char* v = std::getenv("ZAB_GROUP_COMMIT_MAX_RECORDS")) {
    opts.max_batch_records =
        std::max<std::size_t>(1, std::strtoull(v, nullptr, 10));
  }
  if (const char* v = std::getenv("ZAB_GROUP_COMMIT_MAX_BYTES")) {
    opts.max_batch_bytes =
        std::max<std::size_t>(1, std::strtoull(v, nullptr, 10));
  }
  ZAB_RETURN_IF_ERROR(make_dirs(opts.dir));
  std::unique_ptr<FileStorage> fs(new FileStorage(std::move(opts)));
  ZAB_RETURN_IF_ERROR(fs->recover());
  if (fs->group_commit()) fs->start_sync_thread();
  return fs;
}

FileStorage::~FileStorage() { quiesce(/*dispatch=*/false); }

// --- Recovery ----------------------------------------------------------------

Status FileStorage::recover() {
  ZAB_RETURN_IF_ERROR(load_epoch_file());
  ZAB_RETURN_IF_ERROR(load_latest_snapshot());

  auto names = list_dir(opts_.dir);
  if (!names.is_ok()) return names.status();
  for (const auto& name : names.value()) {
    if (name.rfind("log.", 0) != 0) continue;
    const std::string hex = name.substr(4);
    if (hex.size() != 16) continue;
    Segment seg;
    seg.start = Zxid::from_packed(std::strtoull(hex.c_str(), nullptr, 16));
    seg.path = opts_.dir + "/" + name;
    segments_.push_back(std::move(seg));
  }
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) { return a.start < b.start; });

  for (std::size_t i = 0; i < segments_.size(); ++i) {
    ZAB_RETURN_IF_ERROR(
        recover_segment(segments_[i], i + 1 == segments_.size()));
  }
  // Drop segments that ended up empty (e.g. fully torn).
  std::erase_if(segments_, [this](const Segment& s) {
    if (!s.entries.empty()) return false;
    (void)remove_file(s.path);
    return true;
  });

  // Reopen the last segment for appending.
  if (!segments_.empty()) {
    active_fd_ = Fd(::open(segments_.back().path.c_str(),
                           O_WRONLY | O_APPEND | O_CLOEXEC));
    if (!active_fd_.valid()) {
      return Status::io_error("reopen active segment " + segments_.back().path);
    }
  }
  return Status::ok();
}

Status FileStorage::recover_segment(Segment& seg, bool is_last) {
  auto data_res = read_file(seg.path);
  if (!data_res.is_ok()) return data_res.status();
  const Bytes& data = data_res.value();

  std::size_t pos = 0;
  std::uint64_t valid_bytes = 0;
  while (pos + 8 <= data.size()) {
    std::uint32_t len = 0;
    std::uint32_t masked = 0;
    std::memcpy(&len, data.data() + pos, 4);
    std::memcpy(&masked, data.data() + pos + 4, 4);
    if (pos + 8 + len > data.size()) break;  // short record: torn tail
    const std::span<const std::uint8_t> payload(data.data() + pos + 8, len);
    if (crc32c_mask(crc32c(payload)) != masked) break;  // corrupt record
    BufReader r(payload);
    Txn t = decode_txn(r);
    if (!r.ok() || !r.at_end()) break;
    seg.entries.push_back(std::move(t));
    pos += 8 + len;
    valid_bytes = pos;
  }

  if (valid_bytes != data.size()) {
    if (!is_last) {
      return Status::corruption("corrupt record in non-final segment " +
                                seg.path);
    }
    // Torn write at the tail of the newest segment: expected after a crash.
    ZAB_WARN() << "truncating torn tail of " << seg.path << " at "
               << valid_bytes << "/" << data.size();
    ZAB_RETURN_IF_ERROR(truncate_file(seg.path, valid_bytes));
  }
  seg.bytes = valid_bytes;
  return Status::ok();
}

Status FileStorage::load_epoch_file() {
  const std::string path = opts_.dir + "/epoch";
  if (!file_exists(path)) return Status::ok();
  auto data = read_file(path);
  if (!data.is_ok()) return data.status();
  BufReader r(data.value());
  const std::uint32_t magic = r.u32();
  const std::uint32_t version = r.u32();
  const Epoch accepted = r.u32();
  const Epoch current = r.u32();
  const std::uint32_t crc = r.u32();
  if (!r.ok() || magic != kEpochMagic || version != kFormatVersion) {
    return Status::corruption("bad epoch file header");
  }
  BufWriter w;
  w.u32(magic);
  w.u32(version);
  w.u32(accepted);
  w.u32(current);
  if (crc32c(w.data()) != crc) return Status::corruption("epoch file CRC");
  accepted_epoch_ = accepted;
  current_epoch_ = current;
  return Status::ok();
}

Status FileStorage::store_epoch_file() {
  BufWriter w;
  w.u32(kEpochMagic);
  w.u32(kFormatVersion);
  w.u32(accepted_epoch_);
  w.u32(current_epoch_);
  const std::uint32_t crc = crc32c(w.data());
  w.u32(crc);
  return atomic_write_file(opts_.dir + "/epoch", w.data(), opts_.fsync);
}

Status FileStorage::load_latest_snapshot() {
  auto names = list_dir(opts_.dir);
  if (!names.is_ok()) return names.status();
  Zxid best = Zxid::zero();
  std::string best_path;
  for (const auto& name : names.value()) {
    if (name.rfind("snap.", 0) != 0) continue;
    const std::string hex = name.substr(5);
    if (hex.size() != 16) continue;
    const Zxid z = Zxid::from_packed(std::strtoull(hex.c_str(), nullptr, 16));
    if (best_path.empty() || z > best) {
      best = z;
      best_path = opts_.dir + "/" + name;
    }
  }
  if (best_path.empty()) return Status::ok();
  auto data = read_file(best_path);
  if (!data.is_ok()) return data.status();
  BufReader r(data.value());
  const std::uint32_t magic = r.u32();
  const std::uint32_t version = r.u32();
  const Zxid z = r.zxid();
  Bytes state = r.bytes();
  const std::uint32_t crc = r.u32();
  if (!r.ok() || magic != kSnapMagic || version != kFormatVersion) {
    return Status::corruption("bad snapshot header " + best_path);
  }
  BufWriter w;
  w.u32(magic);
  w.u32(version);
  w.zxid(z);
  w.bytes(state);
  if (crc32c(w.data()) != crc) {
    // A torn snapshot is ignored; an older one (or none) still gives a
    // correct, if slower, recovery.
    ZAB_WARN() << "ignoring snapshot with bad CRC: " << best_path;
    return Status::ok();
  }
  snap_ = Snapshot{z, std::move(state)};
  return Status::ok();
}

// --- Epochs --------------------------------------------------------------------

Status FileStorage::set_accepted_epoch(Epoch e) {
  accepted_epoch_ = e;
  return store_epoch_file();
}
Status FileStorage::set_current_epoch(Epoch e) {
  current_epoch_ = e;
  return store_epoch_file();
}

// --- Log write path --------------------------------------------------------------

void FileStorage::encode_record(BufWriter& out, const Txn& txn) {
  // Reserve the [len|crc] header, encode the payload in place, then patch —
  // one buffer, one pass, no copy.
  const std::size_t base = out.size();
  out.u32(0);
  out.u32(0);
  encode_txn(out, txn);
  const auto len = static_cast<std::uint32_t>(out.size() - base - 8);
  out.patch_u32(base, len);
  const std::span<const std::uint8_t> payload(out.data().data() + base + 8,
                                              len);
  out.patch_u32(base + 4, crc32c_mask(crc32c(payload)));
}

Status FileStorage::force_fd(int fd, std::uint64_t* took_ns) {
  const std::uint64_t t0 = mono_ns();
  if (opts_.simulated_force_ns != 0) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(opts_.simulated_force_ns));
  } else if (::fsync(fd) != 0) {
    return Status::io_error("fsync segment");
  }
  if (c_fsyncs_) c_fsyncs_->add();
  if (took_ns) *took_ns = mono_ns() - t0;
  return Status::ok();
}

void FileStorage::note_slow_fsync(std::uint64_t t0, std::uint64_t took,
                                  const std::string& path) {
  if (opts_.slow_fsync_ns == 0 || took < opts_.slow_fsync_ns) return;
  if (c_slow_fsync_) c_slow_fsync_->add();
  if (t0 - last_slow_fsync_log_ns_ >= 1'000'000'000ull) {
    last_slow_fsync_log_ns_ = t0;
    ZAB_WARN() << "slow fsync: " << took / 1'000'000 << " ms on " << path
               << " (threshold " << opts_.slow_fsync_ns / 1'000'000 << " ms)";
  }
}

Status FileStorage::start_segment(Zxid start) {
  Segment seg;
  seg.start = start;
  seg.path = segment_path(start);
  active_fd_ = Fd(::open(seg.path.c_str(),
                         O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
  if (!active_fd_.valid()) {
    return Status::io_error("create segment " + seg.path);
  }
  segments_.push_back(std::move(seg));
  return Status::ok();
}

Status FileStorage::write_record(const Txn& txn) {
  scratch_.clear();
  encode_record(scratch_, txn);
  ZAB_RETURN_IF_ERROR(write_all(active_fd_.get(), scratch_.data()));
  if (opts_.fsync) {
    const std::uint64_t t0 = mono_ns();
    std::uint64_t took = 0;
    ZAB_RETURN_IF_ERROR(force_fd(active_fd_.get(), &took));
    if (h_fsync_ns_) h_fsync_ns_->record(took);
    note_slow_fsync(t0, took, segments_.back().path);
  }
  segments_.back().bytes += scratch_.size();
  if (c_append_bytes_) c_append_bytes_->add(scratch_.size());
  return Status::ok();
}

void FileStorage::append(const Txn& txn, std::function<void()> on_durable) {
  const std::uint64_t t0 = h_append_ns_ ? mono_ns() : 0;
  if (!group_commit()) {
    Status st;
    if (segments_.empty() || segments_.back().bytes >= opts_.segment_bytes) {
      st = start_segment(txn.zxid);
    }
    if (st.is_ok()) st = write_record(txn);
    if (st.is_ok()) {
      segments_.back().entries.push_back(txn);
      last_io_status_ = Status::ok();
      if (c_append_ops_) c_append_ops_->add();
      if (h_append_ns_) h_append_ns_->record(mono_ns() - t0);
      if (on_durable) on_durable();
    } else {
      // The durability callback never fires; the caller's ACK is withheld,
      // which is the correct protocol-level response to a dead disk.
      last_io_status_ = st;
      ZAB_ERROR() << "append failed: " << st.to_string();
    }
    return;
  }

  // Group commit: encode once into an owned buffer, update the in-memory
  // mirror immediately (the pending tail is visible to last_zxid/entries_in),
  // and queue the record for the log-sync thread. Durability is reported
  // later, through the completion queue, in append order.
  BufWriter rec(txn.data.size() + 32);
  encode_record(rec, txn);
  const std::size_t rec_bytes = rec.size();

  const bool roll =
      segments_.empty() || segments_.back().bytes >= opts_.segment_bytes;
  if (roll) {
    Segment seg;
    seg.start = txn.zxid;
    seg.path = segment_path(txn.zxid);
    segments_.push_back(std::move(seg));
  }
  Segment& seg = segments_.back();
  seg.entries.push_back(txn);
  seg.bytes += rec_bytes;
  if (c_append_ops_) c_append_ops_->add();
  if (c_append_bytes_) c_append_bytes_->add(rec_bytes);

  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    if (roll) {
      QueuedWrite rw;
      rw.roll = true;
      rw.path = seg.path;
      sync_queue_.push_back(std::move(rw));
    }
    QueuedWrite qw;
    qw.record = std::move(rec).take();
    qw.cb = std::move(on_durable);
    sync_queue_.push_back(std::move(qw));
    depth = sync_queue_.size();
  }
  queue_cv_.notify_one();
  if (h_queue_depth_) h_queue_depth_->record(depth);
  if (h_append_ns_) h_append_ns_->record(mono_ns() - t0);
}

// --- Group-commit pipeline ---------------------------------------------------

void FileStorage::set_completion_poster(CompletionPoster poster) {
  std::lock_guard<std::mutex> lk(queue_mu_);
  poster_ = std::move(poster);
}

void FileStorage::start_sync_thread() {
  sync_path_ = segments_.empty() ? "" : segments_.back().path;
  sync_thread_ = std::thread([this] { sync_loop(); });
}

void FileStorage::sync_loop() {
  std::unique_lock<std::mutex> lk(queue_mu_);
  while (true) {
    queue_cv_.wait(lk, [this] { return stop_sync_ || !sync_queue_.empty(); });
    if (sync_queue_.empty()) {
      if (stop_sync_) return;
      continue;
    }

    // Form one batch: up to the configured caps, never across a segment
    // roll (one covering force per fd). A roll marker at the queue head is
    // consumed here — the new segment file is created under the lock so the
    // fd handoff stays synchronized with the owner thread.
    std::vector<QueuedWrite> batch;
    std::size_t batch_bytes = 0;
    while (!sync_queue_.empty() && batch.size() < opts_.max_batch_records &&
           batch_bytes < opts_.max_batch_bytes) {
      QueuedWrite& front = sync_queue_.front();
      if (front.roll) {
        if (!batch.empty()) break;
        active_fd_ = Fd(::open(front.path.c_str(),
                               O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                               0644));
        if (!active_fd_.valid() && async_io_status_.is_ok()) {
          async_io_status_ = Status::io_error("create segment " + front.path);
          ZAB_ERROR() << "group commit: " << async_io_status_.to_string();
        }
        sync_path_ = front.path;
        sync_queue_.pop_front();
        continue;
      }
      batch_bytes += front.record.size();
      batch.push_back(std::move(front));
      sync_queue_.pop_front();
    }
    if (batch.empty()) {  // only roll markers were queued
      if (sync_queue_.empty()) drain_cv_.notify_all();
      continue;
    }

    const int fd = active_fd_.get();
    Status st = async_io_status_;
    if (st.is_ok() && fd < 0) st = Status::io_error("no active segment");
    const std::string seg_path = sync_path_;
    CompletionPoster poster = poster_;
    batch_in_flight_ = true;
    lk.unlock();

    // IO happens outside the lock: the owner thread keeps appending.
    std::uint64_t fsync_ns = 0;
    if (st.is_ok()) {
      std::vector<::iovec> iov;
      iov.reserve(batch.size());
      for (const QueuedWrite& q : batch) {
        iov.push_back({const_cast<std::uint8_t*>(q.record.data()),
                       q.record.size()});
      }
      st = writev_all(fd, iov);
    }
    if (st.is_ok() && opts_.fsync) {
      const std::uint64_t t0 = mono_ns();
      st = force_fd(fd, &fsync_ns);
      if (st.is_ok()) note_slow_fsync(t0, fsync_ns, seg_path);
    }

    if (st.is_ok()) {
      BatchDone done;
      done.records = batch.size();
      done.fsync_ns = fsync_ns;
      done.forced = opts_.fsync;
      done.h_batch = h_batch_records_;
      done.h_fsync = h_fsync_ns_;
      for (QueuedWrite& q : batch) {
        if (q.cb) done.cbs.push_back(std::move(q.cb));
      }
      {
        std::lock_guard<std::mutex> g(completions_->mu);
        completions_->ready.push_back(std::move(done));
      }
      // Hand the callbacks back to the owner's loop; without a poster the
      // batch dispatches right here on the sync thread.
      if (poster) {
        auto q = completions_;
        poster([q] { CompletionQueue::dispatch(q); });
      } else {
        CompletionQueue::dispatch(completions_);
      }
    } else {
      // Callbacks withheld: the ACKs they would trigger must not be sent for
      // records that are not durable. The error is sticky and surfaces via
      // last_io_status().
      ZAB_ERROR() << "group-commit batch failed: " << st.to_string();
    }

    lk.lock();
    if (!st.is_ok() && async_io_status_.is_ok()) async_io_status_ = st;
    batch_in_flight_ = false;
    if (sync_queue_.empty()) drain_cv_.notify_all();
  }
}

void FileStorage::CompletionQueue::dispatch(
    const std::shared_ptr<CompletionQueue>& q) {
  // dispatch_mu serializes dispatchers (posted tasks, flush, quiesce) so
  // batches — and callbacks within a batch — run in append order. Durability
  // callbacks must not re-enter flush()/truncate_after().
  std::lock_guard<std::mutex> serial(q->dispatch_mu);
  while (true) {
    BatchDone done;
    {
      std::lock_guard<std::mutex> g(q->mu);
      if (q->ready.empty()) return;
      done = std::move(q->ready.front());
      q->ready.pop_front();
    }
    if (done.h_batch) done.h_batch->record(done.records);
    if (done.forced && done.h_fsync) done.h_fsync->record(done.fsync_ns);
    for (auto& cb : done.cbs) cb();
  }
}

void FileStorage::flush() {
  if (!group_commit()) return;
  {
    std::unique_lock<std::mutex> lk(queue_mu_);
    drain_cv_.wait(lk, [this] {
      return sync_queue_.empty() && !batch_in_flight_;
    });
  }
  // Everything queued is on disk; run any completions not yet dispatched by
  // the poster so callers observe all callbacks fired, in order.
  CompletionQueue::dispatch(completions_);
}

void FileStorage::quiesce(bool dispatch) {
  if (!sync_thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    stop_sync_ = true;
  }
  queue_cv_.notify_one();
  sync_thread_.join();  // drains the queue before exiting
  if (dispatch) {
    CompletionQueue::dispatch(completions_);
  } else {
    // Destructor path: callback targets may already be destroyed.
    std::lock_guard<std::mutex> g(completions_->mu);
    completions_->ready.clear();
  }
}

Status FileStorage::last_io_status() const {
  if (group_commit()) {
    std::lock_guard<std::mutex> lk(queue_mu_);
    if (!async_io_status_.is_ok()) return async_io_status_;
  }
  return last_io_status_;
}

ZabStorage::StorageInfo FileStorage::info() const {
  StorageInfo i;
  i.segments = segments_.size();
  for (const auto& seg : segments_) {
    i.log_entries += seg.entries.size();
    i.log_bytes += seg.bytes;
  }
  if (snap_) {
    i.snapshot_zxid = snap_->last_included.packed();
    i.snapshot_bytes = snap_->state.size();
  }
  return i;
}

Status FileStorage::rewrite_segment(Segment& seg) {
  BufWriter out;
  for (const Txn& t : seg.entries) encode_record(out, t);
  ZAB_RETURN_IF_ERROR(atomic_write_file(seg.path, out.data(), opts_.fsync));
  seg.bytes = out.size();
  return Status::ok();
}

Status FileStorage::truncate_after(Zxid last_keep) {
  // Group commit: make the whole pending tail durable and dispatch its
  // callbacks first. Canceling queued records instead would break callers
  // that count outstanding appends, and dropping already-acknowledged
  // records would lose data the truncation means to keep. After the drain
  // the sync thread is idle and the segment files are stable.
  flush();
  if (c_truncates_) c_truncates_->add();
  active_fd_.reset();
  while (!segments_.empty() && segments_.back().start > last_keep) {
    ZAB_RETURN_IF_ERROR(remove_file(segments_.back().path));
    segments_.pop_back();
  }
  if (!segments_.empty()) {
    Segment& seg = segments_.back();
    const std::size_t before = seg.entries.size();
    while (!seg.entries.empty() && seg.entries.back().zxid > last_keep) {
      seg.entries.pop_back();
    }
    if (seg.entries.empty()) {
      ZAB_RETURN_IF_ERROR(remove_file(seg.path));
      segments_.pop_back();
    } else if (seg.entries.size() != before) {
      ZAB_RETURN_IF_ERROR(rewrite_segment(seg));
    }
  }
  if (!segments_.empty()) {
    active_fd_ = Fd(::open(segments_.back().path.c_str(),
                           O_WRONLY | O_APPEND | O_CLOEXEC));
    if (!active_fd_.valid()) return Status::io_error("reopen after truncate");
  }
  if (group_commit()) {
    // The sync thread reopens from a roll marker on the next segment roll;
    // until then it appends through the fd installed here. Publish the new
    // active path for slow-fsync attribution.
    std::lock_guard<std::mutex> lk(queue_mu_);
    sync_path_ = segments_.empty() ? "" : segments_.back().path;
  }
  return Status::ok();
}

// --- Log read path ----------------------------------------------------------------

Zxid FileStorage::last_zxid() const {
  if (!segments_.empty() && !segments_.back().entries.empty()) {
    return segments_.back().entries.back().zxid;
  }
  if (snap_) return snap_->last_included;
  return Zxid::zero();
}

Zxid FileStorage::latest_at_or_below(Zxid z) const {
  Zxid best = Zxid::zero();
  if (snap_ && snap_->last_included <= z) best = snap_->last_included;
  for (const auto& seg : segments_) {
    if (seg.start > z) break;
    for (const auto& t : seg.entries) {
      if (t.zxid > z) break;
      best = std::max(best, t.zxid);
    }
  }
  return best;
}

bool FileStorage::covers(Zxid z) const {
  if (z == Zxid::zero()) return true;
  if (snap_ && snap_->last_included == z) return true;
  return latest_at_or_below(z) == z && z != Zxid::zero();
}

std::vector<Txn> FileStorage::entries_in(Zxid after, Zxid upto) const {
  std::vector<Txn> out;
  for (const auto& seg : segments_) {
    for (const auto& t : seg.entries) {
      if (t.zxid > after && t.zxid <= upto) out.push_back(t);
    }
  }
  return out;
}

Zxid FileStorage::first_logged() const {
  for (const auto& seg : segments_) {
    if (!seg.entries.empty()) return seg.entries.front().zxid;
  }
  return Zxid::max();
}

std::size_t FileStorage::total_entries() const {
  std::size_t n = 0;
  for (const auto& seg : segments_) n += seg.entries.size();
  return n;
}

// --- Snapshots ------------------------------------------------------------------------

Status FileStorage::save_snapshot(const Snapshot& snap) {
  BufWriter w;
  w.u32(kSnapMagic);
  w.u32(kFormatVersion);
  w.zxid(snap.last_included);
  w.bytes(snap.state);
  w.u32(crc32c(w.data()));
  ZAB_RETURN_IF_ERROR(
      atomic_write_file(snap_path(snap.last_included), w.data(), opts_.fsync));
  snap_ = snap;
  if (c_snapshots_) c_snapshots_->add();
  return Status::ok();
}

Status FileStorage::install_snapshot(const Snapshot& snap) {
  flush();  // same drain discipline as truncate_after
  ZAB_RETURN_IF_ERROR(save_snapshot(snap));
  // The local log is obsolete: a snapshot install replaces history.
  active_fd_.reset();
  for (auto& seg : segments_) {
    ZAB_RETURN_IF_ERROR(remove_file(seg.path));
  }
  segments_.clear();
  return Status::ok();
}

void FileStorage::purge_log(std::size_t keep) {
  if (!snap_) return;
  flush();  // old-segment records may still be queued
  while (segments_.size() > 1) {
    const Segment& first = segments_.front();
    if (first.entries.empty() ||
        first.entries.back().zxid > snap_->last_included) {
      break;
    }
    if (total_entries() - first.entries.size() < keep) break;
    (void)remove_file(first.path);
    segments_.erase(segments_.begin());
  }
}

}  // namespace zab::storage
