// Small POSIX filesystem helpers with RAII file descriptors.
#pragma once

#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/status.h"

namespace zab::storage {

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

Status make_dirs(const std::string& path);
[[nodiscard]] bool file_exists(const std::string& path);
Result<std::vector<std::string>> list_dir(const std::string& dir);
Result<Bytes> read_file(const std::string& path);
/// Write file atomically: temp file in the same dir, fsync, rename, fsync dir.
Status atomic_write_file(const std::string& path, std::span<const std::uint8_t> data,
                         bool do_fsync);
Status remove_file(const std::string& path);
Status fsync_dir(const std::string& dir);
Status truncate_file(const std::string& path, std::uint64_t size);
Status remove_dir_recursive(const std::string& dir);

}  // namespace zab::storage
