#include "storage/mem_storage.h"

#include <algorithm>
#include <cassert>

namespace zab::storage {

void MemStorage::append(const Txn& txn, std::function<void()> on_durable) {
  assert(log_.empty() || txn.zxid > log_.back().txn.zxid);
  log_.push_back(Entry{txn, false});
  const std::uint64_t seq = next_append_seq_++;
  const Zxid z = txn.zxid;
  auto mark_durable = [this, z, seq, cb = std::move(on_durable)] {
    (void)seq;
    // The entry may have been truncated away by a leader change while the
    // write was in flight — then durability is moot. The log is zxid-ordered,
    // so binary search keeps this O(log n) on the hot path.
    auto it = std::lower_bound(
        log_.begin(), log_.end(), z,
        [](const Entry& e, const Zxid& key) { return e.txn.zxid < key; });
    if (it != log_.end() && it->txn.zxid == z) {
      it->durable = true;
      if (cb) cb();
    }
  };
  if (sched_) {
    sched_(txn_wire_size(txn), std::move(mark_durable));
  } else {
    mark_durable();
  }
}

Status MemStorage::truncate_after(Zxid last_keep) {
  while (!log_.empty() && log_.back().txn.zxid > last_keep) {
    log_.pop_back();
  }
  return Status::ok();
}

Zxid MemStorage::last_zxid() const {
  if (!log_.empty()) return log_.back().txn.zxid;
  if (snap_) return snap_->last_included;
  return Zxid::zero();
}

Zxid MemStorage::latest_at_or_below(Zxid z) const {
  Zxid best = Zxid::zero();
  if (snap_ && snap_->last_included <= z) best = snap_->last_included;
  for (const auto& e : log_) {
    if (e.txn.zxid > z) break;
    best = std::max(best, e.txn.zxid);
  }
  return best;
}

bool MemStorage::covers(Zxid z) const {
  if (z == Zxid::zero()) return true;
  if (snap_ && snap_->last_included == z) return true;
  return std::any_of(log_.begin(), log_.end(),
                     [z](const Entry& e) { return e.txn.zxid == z; });
}

std::vector<Txn> MemStorage::entries_in(Zxid after, Zxid upto) const {
  std::vector<Txn> out;
  for (const auto& e : log_) {
    if (e.txn.zxid > after && e.txn.zxid <= upto) out.push_back(e.txn);
  }
  return out;
}

Zxid MemStorage::first_logged() const {
  return log_.empty() ? Zxid::max() : log_.front().txn.zxid;
}

Status MemStorage::save_snapshot(const Snapshot& snap) {
  snap_ = snap;
  return Status::ok();
}

Status MemStorage::install_snapshot(const Snapshot& snap) {
  snap_ = snap;
  log_.clear();
  return Status::ok();
}

void MemStorage::purge_log(std::size_t keep) {
  if (!snap_) return;
  while (log_.size() > keep && log_.front().txn.zxid <= snap_->last_included) {
    log_.pop_front();
  }
}

void MemStorage::crash_volatile() {
  while (!log_.empty() && !log_.back().durable) {
    log_.pop_back();
  }
  // Entries before the tail are durable by append/sync ordering; assert in
  // debug builds.
#ifndef NDEBUG
  for (const auto& e : log_) assert(e.durable);
#endif
}

}  // namespace zab::storage
