// Stable-storage interface required by the Zab protocol.
//
// The paper requires each process to keep, across crashes (§4):
//   * acceptedEpoch (f.p)  — the last NEWEPOCH it acknowledged;
//   * currentEpoch  (f.a)  — the last NEWLEADER it acknowledged;
//   * its transaction history (the accepted proposals, in zxid order).
// ZooKeeper realizes the history as a transaction log plus periodic
// (fuzzy) snapshots of the application state; we expose the same split.
//
// Appends are asynchronous: on_durable fires once the record is on stable
// storage. A follower may ACK a proposal only after that point. Everything
// else (recovery-path reads, truncation, epoch updates) is synchronous.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/txn.h"
#include "common/types.h"

namespace zab::storage {

struct Snapshot {
  Zxid last_included;  // state covers all txns <= this zxid
  Bytes state;         // opaque application state
};

class ZabStorage {
 public:
  virtual ~ZabStorage() = default;

  // --- Epoch metadata (durable before the setter returns) -------------------
  [[nodiscard]] virtual Epoch accepted_epoch() const = 0;
  [[nodiscard]] virtual Epoch current_epoch() const = 0;
  virtual Status set_accepted_epoch(Epoch e) = 0;
  virtual Status set_current_epoch(Epoch e) = 0;

  // --- Transaction log -------------------------------------------------------
  /// Append in zxid order. `on_durable` fires (on the owner's event context)
  /// once the record is stable; callbacks fire in append order.
  virtual void append(const Txn& txn, std::function<void()> on_durable) = 0;

  /// Drop every logged entry with zxid > last_keep.
  virtual Status truncate_after(Zxid last_keep) = 0;

  /// Highest zxid covered by this storage (log tail, or snapshot boundary if
  /// the log is empty). Zxid::zero() when empty.
  [[nodiscard]] virtual Zxid last_zxid() const = 0;

  /// Largest zxid covered by storage that is <= z (Zxid::zero() if none).
  /// Used by the leader to find the sync point for a diverged follower.
  [[nodiscard]] virtual Zxid latest_at_or_below(Zxid z) const = 0;

  /// True if z is the snapshot boundary, a logged entry, or zero.
  [[nodiscard]] virtual bool covers(Zxid z) const = 0;

  /// Entries with after < zxid <= upto that are still in the log (not yet
  /// folded into a snapshot), in zxid order.
  [[nodiscard]] virtual std::vector<Txn> entries_in(Zxid after,
                                                    Zxid upto) const = 0;

  /// Earliest zxid still available as a log entry; Zxid::max() if log empty.
  /// Entries below this are only represented by the snapshot.
  [[nodiscard]] virtual Zxid first_logged() const = 0;

  // --- Snapshots -------------------------------------------------------------
  /// Persist a local checkpoint of application state covering `upto`.
  virtual Status save_snapshot(const Snapshot& snap) = 0;
  /// Replace all local state with a snapshot received from the leader; the
  /// log restarts empty after `snap.last_included`.
  virtual Status install_snapshot(const Snapshot& snap) = 0;
  [[nodiscard]] virtual std::optional<Snapshot> snapshot() const = 0;

  /// Discard log entries already covered by the snapshot, keeping at least
  /// `keep` trailing entries (log retention for DIFF syncs).
  virtual void purge_log(std::size_t keep) = 0;

  // --- Introspection ----------------------------------------------------------
  /// Coarse capacity stats for the admin plane's /status endpoint.
  struct StorageInfo {
    std::uint64_t log_entries = 0;
    std::uint64_t log_bytes = 0;  // payload/record bytes; 0 when unknown
    std::uint64_t segments = 0;
    std::uint64_t snapshot_zxid = 0;   // packed; 0 = no snapshot
    std::uint64_t snapshot_bytes = 0;  // serialized application state size
  };
  /// Call from the owner's event context (same rule as the mutators). The
  /// default reports only the snapshot; backends override with log stats.
  [[nodiscard]] virtual StorageInfo info() const {
    StorageInfo i;
    if (auto s = snapshot()) {
      i.snapshot_zxid = s->last_included.packed();
      i.snapshot_bytes = s->state.size();
    }
    return i;
  }
};

}  // namespace zab::storage
