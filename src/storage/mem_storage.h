// In-memory ZabStorage used in simulation.
//
// "Stable storage" here means: survives a *simulated* crash of the protocol
// peer. The object itself is owned by the test/bench harness and outlives
// peer restarts. Durability is delegated to a pluggable scheduler (the
// simulator's DiskModel): an appended entry becomes durable only when the
// scheduler fires its callback, and crash_volatile() discards the
// not-yet-durable tail — reproducing a real machine losing its page cache.
#pragma once

#include <deque>
#include <functional>

#include "storage/zab_storage.h"

namespace zab::storage {

class MemStorage final : public ZabStorage {
 public:
  /// Scheduler invoked with (bytes, on_durable). The default makes appends
  /// durable immediately (synchronously).
  using DurabilityScheduler =
      std::function<void(std::size_t, std::function<void()>)>;

  MemStorage() = default;
  explicit MemStorage(DurabilityScheduler sched) : sched_(std::move(sched)) {}

  void set_scheduler(DurabilityScheduler sched) { sched_ = std::move(sched); }

  // --- ZabStorage ------------------------------------------------------------
  [[nodiscard]] Epoch accepted_epoch() const override { return accepted_epoch_; }
  [[nodiscard]] Epoch current_epoch() const override { return current_epoch_; }
  Status set_accepted_epoch(Epoch e) override {
    accepted_epoch_ = e;
    return Status::ok();
  }
  Status set_current_epoch(Epoch e) override {
    current_epoch_ = e;
    return Status::ok();
  }

  void append(const Txn& txn, std::function<void()> on_durable) override;
  Status truncate_after(Zxid last_keep) override;
  [[nodiscard]] Zxid last_zxid() const override;
  [[nodiscard]] Zxid latest_at_or_below(Zxid z) const override;
  [[nodiscard]] bool covers(Zxid z) const override;
  [[nodiscard]] std::vector<Txn> entries_in(Zxid after,
                                            Zxid upto) const override;
  [[nodiscard]] Zxid first_logged() const override;

  Status save_snapshot(const Snapshot& snap) override;
  Status install_snapshot(const Snapshot& snap) override;
  [[nodiscard]] std::optional<Snapshot> snapshot() const override {
    return snap_;
  }
  void purge_log(std::size_t keep) override;

  [[nodiscard]] StorageInfo info() const override {
    StorageInfo i;
    i.log_entries = log_.size();
    for (const Entry& e : log_) i.log_bytes += e.txn.data.size();
    i.segments = log_.empty() ? 0 : 1;  // memory log = one logical segment
    if (snap_) {
      i.snapshot_zxid = snap_->last_included.packed();
      i.snapshot_bytes = snap_->state.size();
    }
    return i;
  }

  // --- Simulation hooks --------------------------------------------------------
  /// Model a machine crash: drop every entry whose durability callback has
  /// not fired yet. (Pair with DiskModel::crash(), which drops the
  /// callbacks themselves.)
  void crash_volatile();

  [[nodiscard]] std::size_t log_size() const { return log_.size(); }

 private:
  struct Entry {
    Txn txn;
    bool durable = false;
  };

  DurabilityScheduler sched_;
  std::deque<Entry> log_;  // zxid-ordered
  std::optional<Snapshot> snap_;
  Epoch accepted_epoch_ = kNoEpoch;
  Epoch current_epoch_ = kNoEpoch;
  std::uint64_t next_append_seq_ = 0;
};

}  // namespace zab::storage
