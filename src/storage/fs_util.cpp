#include "storage/fs_util.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace zab::storage {

namespace {
std::string errno_msg(const std::string& what) {
  return what + ": " + std::strerror(errno);
}
}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status make_dirs(const std::string& path) {
  std::string cur;
  for (std::size_t i = 0; i < path.size(); ++i) {
    cur += path[i];
    if (path[i] == '/' || i + 1 == path.size()) {
      if (cur == "/" || cur.empty()) continue;
      if (::mkdir(cur.c_str(), 0755) != 0 && errno != EEXIST) {
        return Status::io_error(errno_msg("mkdir " + cur));
      }
    }
  }
  return Status::ok();
}

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

Result<std::vector<std::string>> list_dir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Status::io_error(errno_msg("opendir " + dir));
  std::vector<std::string> names;
  while (dirent* e = ::readdir(d)) {
    const std::string n = e->d_name;
    if (n != "." && n != "..") names.push_back(n);
  }
  ::closedir(d);
  return names;
}

Result<Bytes> read_file(const std::string& path) {
  Fd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  if (!fd.valid()) return Status::io_error(errno_msg("open " + path));
  Bytes out;
  std::uint8_t buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::io_error(errno_msg("read " + path));
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  return out;
}

Status atomic_write_file(const std::string& path,
                         std::span<const std::uint8_t> data, bool do_fsync) {
  const std::string tmp = path + ".tmp";
  {
    Fd fd(::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
    if (!fd.valid()) return Status::io_error(errno_msg("open " + tmp));
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::write(fd.get(), data.data() + off, data.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::io_error(errno_msg("write " + tmp));
      }
      off += static_cast<std::size_t>(n);
    }
    if (do_fsync && ::fsync(fd.get()) != 0) {
      return Status::io_error(errno_msg("fsync " + tmp));
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::io_error(errno_msg("rename " + tmp));
  }
  if (do_fsync) {
    const auto slash = path.find_last_of('/');
    if (slash != std::string::npos) {
      ZAB_RETURN_IF_ERROR(fsync_dir(path.substr(0, slash)));
    }
  }
  return Status::ok();
}

Status remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::io_error(errno_msg("unlink " + path));
  }
  return Status::ok();
}

Status fsync_dir(const std::string& dir) {
  Fd fd(::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC));
  if (!fd.valid()) return Status::io_error(errno_msg("open dir " + dir));
  if (::fsync(fd.get()) != 0) {
    return Status::io_error(errno_msg("fsync dir " + dir));
  }
  return Status::ok();
}

Status truncate_file(const std::string& path, std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::io_error(errno_msg("truncate " + path));
  }
  return Status::ok();
}

Status remove_dir_recursive(const std::string& dir) {
  auto entries = list_dir(dir);
  if (!entries.is_ok()) return entries.status();
  for (const auto& name : entries.value()) {
    const std::string p = dir + "/" + name;
    struct stat st {};
    if (::stat(p.c_str(), &st) != 0) continue;
    if (S_ISDIR(st.st_mode)) {
      ZAB_RETURN_IF_ERROR(remove_dir_recursive(p));
    } else {
      ZAB_RETURN_IF_ERROR(remove_file(p));
    }
  }
  if (::rmdir(dir.c_str()) != 0 && errno != ENOENT) {
    return Status::io_error(errno_msg("rmdir " + dir));
  }
  return Status::ok();
}

}  // namespace zab::storage
