#!/usr/bin/env python3
"""Lint a Prometheus text-format exposition (as served by GET /metrics).

Usage:
    check_prometheus.py [file ...]      # no args: read stdin
    curl -s localhost:9101/metrics | tools/check_prometheus.py

Checks (text format 0.0.4):
  - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*
  - `# TYPE <name> <type>` lines use a known type, at most once per name,
    and appear before the first sample of that name
  - label syntax: name{label="value",...} with valid label names and
    backslash-escaped values
  - sample values parse as numbers (including +Inf/-Inf/NaN)
  - every sample belongs to a declared metric family (exact name, or
    <family>_sum/_count for summaries/histograms, or <family>_bucket for
    histograms)
  - request-attribution families: when any zab_op_stage_* family appears,
    the full per-stage set (queue_wait, log_fsync, quorum_ack, commit,
    deliver, reply_write) must be declared as summaries, alongside
    zab_op_total_ns — a missing stage silently skews the p99 decomposition
  - wire-batching families: when any zab_batch_* family appears, the full
    set must travel together — zab_batch_propose_txns / _bytes as
    summaries, the three zab_batch_flush_reason_* counters, and the
    zab_ack_coalesced / zab_commit_coalesced companions — a partial scrape
    makes the frames-per-txn dashboards silently wrong
  - tiered-read families: when any zab_read_* or zab_sync_* family
    appears, the whole read-path set must travel together — the
    zab_read_served_local / _fenced / _not_ready counters plus the
    zab_read_parked_ns and zab_sync_barrier_ns summaries — a scrape with
    only part of the set makes the served-vs-parked read dashboards (and
    the not-ready rotation alarm) silently wrong
  - reconfiguration families: when any zab_reconfig_* family appears, the
    full membership set must travel together — the zab_reconfig_proposed /
    _committed / _aborted counters, the zab_reconfig_join_sync_ns summary,
    and the zab_reconfig_quorum_size / _config_version gauges — alerting on
    a config_version that never advances (or an aborted spike) needs the
    whole family in every scrape

Exit status 0 when clean, 1 with one "line N: ..." diagnostic per problem.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}


def parse_value(text):
    if text in ("+Inf", "-Inf", "Inf", "NaN"):
        return True
    try:
        float(text)
        return True
    except ValueError:
        return False


def split_labels(body):
    """Split the inside of {...} into label="value" pairs; None on error."""
    pairs, i, n = [], 0, len(body)
    while i < n:
        eq = body.find("=", i)
        if eq < 0:
            return None
        name = body[i:eq]
        if eq + 1 >= n or body[eq + 1] != '"':
            return None
        j = eq + 2
        while j < n and body[j] != '"':
            j += 2 if body[j] == "\\" else 1
        if j >= n:
            return None
        pairs.append((name, body[eq + 2 : j]))
        i = j + 1
        if i < n:
            if body[i] != ",":
                return None
            i += 1
    return pairs


def lint(lines):
    errors = []
    types = {}  # family name -> type
    sampled = set()

    def err(lineno, msg):
        errors.append(f"line {lineno}: {msg}")

    for lineno, raw in enumerate(lines, start=1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    err(lineno, f"malformed TYPE line: {line!r}")
                    continue
                _, _, name, typ = parts
                if not METRIC_NAME.match(name):
                    err(lineno, f"invalid metric name in TYPE: {name!r}")
                if typ not in TYPES:
                    err(lineno, f"unknown type {typ!r} for {name}")
                if name in types:
                    err(lineno, f"duplicate TYPE for {name}")
                if name in sampled:
                    err(lineno, f"TYPE for {name} after its first sample")
                types[name] = typ
            # HELP and free comments pass through.
            continue

        # Sample line: name[{labels}] value [timestamp]
        m = re.match(r"^([^\s{]+)(\{(.*)\})?\s+(\S+)(\s+-?\d+)?\s*$", line)
        if not m:
            err(lineno, f"unparseable sample: {line!r}")
            continue
        name, _, labels, value = m.group(1), m.group(2), m.group(3), m.group(4)
        if not METRIC_NAME.match(name):
            err(lineno, f"invalid metric name: {name!r}")
            continue
        if labels is not None:
            pairs = split_labels(labels)
            if pairs is None:
                err(lineno, f"malformed labels: {{{labels}}}")
            else:
                for lname, lvalue in pairs:
                    if not LABEL_NAME.match(lname):
                        err(lineno, f"invalid label name: {lname!r}")
                    if re.search(r'(?<!\\)"', lvalue):
                        err(lineno, f"unescaped quote in label {lname}")
        if not parse_value(value):
            err(lineno, f"non-numeric value {value!r} for {name}")

        family = name
        for suffix in ("_sum", "_count", "_bucket"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) in ("summary", "histogram"):
                if suffix == "_bucket" and types[base] != "histogram":
                    continue
                family = base
                break
        if family not in types:
            err(lineno, f"sample {name} has no preceding TYPE declaration")
        sampled.add(family)
        sampled.add(name)

    if not sampled and not errors:
        errors.append("line 0: exposition contains no samples")

    # Request-attribution families travel as a set: a scrape with some but
    # not all zab_op_stage_* summaries would render a partial (and therefore
    # wrong) p99 decomposition downstream.
    op_stages = {
        name
        for name in types
        if name.startswith("zab_op_stage_") and not name.endswith("_max")
    }
    if op_stages:
        expected = {
            "zab_op_stage_" + s
            for s in (
                "queue_wait",
                "log_fsync",
                "quorum_ack",
                "commit",
                "deliver",
                "reply_write",
            )
        }
        for name in sorted(expected - op_stages):
            errors.append(f"line 0: incomplete op-stage set: missing {name}")
        for name in sorted(op_stages - expected):
            errors.append(f"line 0: unknown op-stage family {name}")
        for name in sorted(op_stages & expected):
            if types[name] != "summary":
                errors.append(
                    f"line 0: {name} must be a summary, is {types[name]}"
                )
        if "zab_op_total_ns" not in types:
            errors.append(
                "line 0: zab_op_stage_* present without zab_op_total_ns"
            )

    # Wire-batching families travel as a set too: frames-per-txn dashboards
    # divide the propose summaries by the flush-reason counters, so a scrape
    # with only part of the family renders silently wrong ratios.
    batch = {
        name
        for name in types
        if name.startswith("zab_batch_") and not name.endswith("_max")
    }
    if batch:
        summaries = {"zab_batch_propose_txns", "zab_batch_propose_bytes"}
        counters = {
            "zab_batch_flush_reason_" + r for r in ("size", "bytes", "timer")
        }
        expected = summaries | counters
        for name in sorted(expected - batch):
            errors.append(f"line 0: incomplete batching set: missing {name}")
        for name in sorted(batch - expected):
            errors.append(f"line 0: unknown batching family {name}")
        for name in sorted(batch & summaries):
            if types[name] != "summary":
                errors.append(
                    f"line 0: {name} must be a summary, is {types[name]}"
                )
        for name in sorted(batch & counters):
            if types[name] != "counter":
                errors.append(
                    f"line 0: {name} must be a counter, is {types[name]}"
                )
        for name in ("zab_ack_coalesced", "zab_commit_coalesced"):
            if types.get(name) != "counter":
                errors.append(
                    f"line 0: zab_batch_* present without counter {name}"
                )

    # Tiered-read families travel as a set as well: the read dashboards
    # plot served_local vs fenced vs not_ready against the parked/barrier
    # latency summaries, so a partial scrape misrepresents the read path.
    read = {
        name
        for name in types
        if (name.startswith("zab_read_") or name.startswith("zab_sync_"))
        and not name.endswith("_max")
    }
    if read:
        counters = {
            "zab_read_served_local",
            "zab_read_fenced",
            "zab_read_not_ready",
        }
        summaries = {"zab_read_parked_ns", "zab_sync_barrier_ns"}
        expected = counters | summaries
        for name in sorted(expected - read):
            errors.append(f"line 0: incomplete tiered-read set: missing {name}")
        for name in sorted(read - expected):
            errors.append(f"line 0: unknown tiered-read family {name}")
        for name in sorted(read & counters):
            if types[name] != "counter":
                errors.append(
                    f"line 0: {name} must be a counter, is {types[name]}"
                )
        for name in sorted(read & summaries):
            if types[name] != "summary":
                errors.append(
                    f"line 0: {name} must be a summary, is {types[name]}"
                )

    # Reconfiguration families travel as a set: the membership dashboards
    # join the proposed/committed/aborted rates against the config_version
    # and quorum_size gauges, and the join-sync summary is the capacity
    # signal for adding servers — a partial scrape hides a stuck or
    # thrashing reconfiguration.
    reconfig = {
        name
        for name in types
        if name.startswith("zab_reconfig_") and not name.endswith("_max")
    }
    if reconfig:
        counters = {
            "zab_reconfig_" + r for r in ("proposed", "committed", "aborted")
        }
        summaries = {"zab_reconfig_join_sync_ns"}
        gauges = {"zab_reconfig_quorum_size", "zab_reconfig_config_version"}
        expected = counters | summaries | gauges
        for name in sorted(expected - reconfig):
            errors.append(f"line 0: incomplete reconfig set: missing {name}")
        for name in sorted(reconfig - expected):
            errors.append(f"line 0: unknown reconfig family {name}")
        for name in sorted(reconfig & counters):
            if types[name] != "counter":
                errors.append(
                    f"line 0: {name} must be a counter, is {types[name]}"
                )
        for name in sorted(reconfig & summaries):
            if types[name] != "summary":
                errors.append(
                    f"line 0: {name} must be a summary, is {types[name]}"
                )
        for name in sorted(reconfig & gauges):
            if types[name] != "gauge":
                errors.append(
                    f"line 0: {name} must be a gauge, is {types[name]}"
                )
    return errors


def main(argv):
    if len(argv) > 1:
        inputs = [(p, open(p, encoding="utf-8").readlines()) for p in argv[1:]]
    else:
        inputs = [("<stdin>", sys.stdin.readlines())]
    failed = False
    for label, lines in inputs:
        errors = lint(lines)
        for e in errors:
            print(f"{label}: {e}", file=sys.stderr)
        if errors:
            failed = True
        else:
            n = sum(1 for l in lines if l.strip() and not l.startswith("#"))
            print(f"{label}: ok ({n} samples)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
