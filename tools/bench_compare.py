#!/usr/bin/env python3
"""Compare a bench --json run against a checked-in baseline.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [options]

Options:
    --tol FRAC        allowed relative increase per numeric cell
                      (default 0.03 = 3%; decreases always pass)
    --tables I,J,...  table indices to compare (default: all shared indices)
    --cols NAME[,..]  column headers to compare (default: every numeric
                      column); names are matched exactly
    --assert-max IDX:COL:MAX
                      additionally require every numeric cell of column COL
                      in CURRENT's table IDX to be <= MAX (repeatable); used
                      for absolute gates like span overhead_pct
    --list            print CURRENT's table layout and exit

The documents are the JsonReport format written by bench_common.h:
    {"bench":"...","tables":[{"headers":[...],"rows":[[...],...]},...]}

Regression = a numeric cell grew by more than --tol relative to the
baseline cell at the same (table, row, column). Table shape (headers, row
count) must match for the compared tables — a layout change means the
baseline needs regenerating, which is reported as such. Exit status 0 when
clean, 1 with one diagnostic line per problem.
"""

import json
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if "tables" not in doc or not isinstance(doc["tables"], list):
        raise ValueError(f"{path}: not a bench JsonReport document")
    return doc


def as_number(cell):
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def compare_tables(base, cur, idx, cols, tol, problems):
    if base["headers"] != cur["headers"]:
        problems.append(
            f"table {idx}: headers changed "
            f"({base['headers']} -> {cur['headers']}); regenerate the baseline"
        )
        return
    if len(base["rows"]) != len(cur["rows"]):
        problems.append(
            f"table {idx}: row count changed ({len(base['rows'])} -> "
            f"{len(cur['rows'])}); regenerate the baseline"
        )
        return
    headers = base["headers"]
    for ri, (brow, crow) in enumerate(zip(base["rows"], cur["rows"])):
        for ci, header in enumerate(headers):
            if cols is not None and header not in cols:
                continue
            if ci >= len(brow) or ci >= len(crow):
                continue
            bv, cv = as_number(brow[ci]), as_number(crow[ci])
            if bv is None or cv is None:
                continue
            if bv == 0:
                continue  # no meaningful relative comparison
            rel = (cv - bv) / abs(bv)
            if rel > tol:
                problems.append(
                    f"table {idx} row {ri} [{header}]: "
                    f"{bv:g} -> {cv:g} (+{100 * rel:.1f}%, tol "
                    f"{100 * tol:.0f}%)"
                )


def assert_max(cur_tables, spec, problems):
    try:
        idx_s, col, max_s = spec.split(":")
        idx, limit = int(idx_s), float(max_s)
    except ValueError:
        problems.append(f"bad --assert-max spec {spec!r} (want IDX:COL:MAX)")
        return
    if idx >= len(cur_tables):
        problems.append(f"--assert-max {spec}: no table {idx} in current run")
        return
    table = cur_tables[idx]
    if col not in table["headers"]:
        problems.append(
            f"--assert-max {spec}: no column {col!r} in table {idx} "
            f"(has {table['headers']})"
        )
        return
    ci = table["headers"].index(col)
    for ri, row in enumerate(table["rows"]):
        v = as_number(row[ci]) if ci < len(row) else None
        if v is not None and v > limit:
            problems.append(
                f"table {idx} row {ri} [{col}]: {v:g} exceeds max {limit:g}"
            )


def main(argv):
    paths, tol, tables, cols, maxes, list_only = [], 0.03, None, None, [], False
    i = 1
    while i < len(argv):
        a = argv[i]
        if a == "--tol":
            i += 1
            tol = float(argv[i])
        elif a == "--tables":
            i += 1
            tables = [int(t) for t in argv[i].split(",")]
        elif a == "--cols":
            i += 1
            cols = set(argv[i].split(","))
        elif a == "--assert-max":
            i += 1
            maxes.append(argv[i])
        elif a == "--list":
            list_only = True
        elif a.startswith("--"):
            print(f"unknown option {a!r}", file=sys.stderr)
            return 2
        else:
            paths.append(a)
        i += 1
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    base_doc, cur_doc = load(paths[0]), load(paths[1])
    if list_only:
        for idx, t in enumerate(cur_doc["tables"]):
            print(f"table {idx}: {t['headers']} ({len(t['rows'])} rows)")
        return 0

    problems = []
    shared = min(len(base_doc["tables"]), len(cur_doc["tables"]))
    if len(base_doc["tables"]) != len(cur_doc["tables"]):
        problems.append(
            f"table count changed ({len(base_doc['tables'])} -> "
            f"{len(cur_doc['tables'])}); regenerate the baseline"
        )
    for idx in tables if tables is not None else range(shared):
        if idx >= shared:
            problems.append(f"table {idx}: absent from one of the documents")
            continue
        compare_tables(
            base_doc["tables"][idx], cur_doc["tables"][idx], idx, cols, tol,
            problems,
        )
    for spec in maxes:
        assert_max(cur_doc["tables"], spec, problems)

    for p in problems:
        print(p, file=sys.stderr)
    if not problems:
        which = tables if tables is not None else f"all {shared}"
        print(f"ok: tables {which} within {100 * tol:.0f}% of baseline")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
